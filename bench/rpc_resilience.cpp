// RPC resilience benchmark (DESIGN.md §9).
//
// Two measurements of the resilient client substrate under the fault models
// the paper's testbed motivates:
//
//   loss sweep - 200 config_set calls through KernelApi at packet-loss rates
//                {0, 1, 5, 20}%, one-shot (max_retries=0, the pre-§9 client)
//                vs the retrying client (backoff + replay-cache dedup).
//                Reports success rate and p50/p99 call latency in simulated
//                milliseconds, plus retries sent and server replays served.
//                The retrying client must hold >= 99% success at 5% loss.
//   failover   - a steady 2 Hz stream of federated checkpoint_save calls
//                while the client's home server node crashes mid-stream: the
//                directory re-resolution + federation rotation must keep the
//                stream completing (reroutes > 0, no lost calls).
//
// Packet loss perturbs the shared rng, so this bench says nothing about the
// deterministic Table 1-3 runs — those keep loss at 0 and are byte-identical
// with or without this substrate.
//
// Emits BENCH_rpc_resilience.json (or argv[1]) for trend tracking.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "kernel/api.h"
#include "obs/metrics.h"

namespace phoenix::bench {
namespace {

using kernel::KernelApi;
using net::CallOptions;
using net::Status;

struct CallRec {
  sim::SimTime issued = 0;
  sim::SimTime done = 0;
  Status status = Status::kUnreachable;
  bool completed = false;
};

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[idx];
}

cluster::ClusterSpec bench_spec() {
  cluster::ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 8;
  spec.backups_per_partition = 1;
  spec.networks = 3;
  return spec;
}

struct SweepResult {
  double loss_pct = 0;
  const char* mode = "";
  std::size_t calls = 0;
  std::size_t ok = 0;
  double success_pct = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t retries = 0;
  std::uint64_t replays = 0;
};

constexpr std::size_t kSweepCalls = 200;
constexpr sim::SimTime kIssueSpacing = 100 * sim::kMillisecond;

SweepResult run_sweep(double loss_pct, bool retries_on) {
  Harness h(bench_spec());
  h.run_s(3.0);
  KernelApi api(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0],
                h.kernel);
  h.injector.set_packet_loss(loss_pct / 100.0);

  const CallOptions opts =
      retries_on ? CallOptions{.deadline = 30 * sim::kSecond, .max_retries = 8}
                 : CallOptions{.deadline = 10 * sim::kSecond, .max_retries = 0};

  struct Ctx {
    KernelApi* api;
    cluster::Cluster* cluster;
    std::vector<CallRec> recs;
    CallOptions opts;
  } ctx{&api, &h.cluster, std::vector<CallRec>(kSweepCalls), opts};

  auto& engine = h.cluster.engine();
  for (std::size_t i = 0; i < kSweepCalls; ++i) {
    engine.schedule_after(static_cast<sim::SimTime>(i) * kIssueSpacing,
                          [&ctx, i] {
                            CallRec& rec = ctx.recs[i];
                            rec.issued = ctx.cluster->engine().now();
                            ctx.api->config_set(
                                "bench/k" + std::to_string(i), "v",
                                [&ctx, i](KernelApi::Result<std::uint64_t> r) {
                                  CallRec& done = ctx.recs[i];
                                  done.done = ctx.cluster->engine().now();
                                  done.status = r.status;
                                  done.completed = true;
                                },
                                ctx.opts);
                          });
  }
  // Issue window + the widest deadline + slack: every call has completed.
  h.run_s(sim::to_seconds(kSweepCalls * kIssueSpacing) + 45.0);

  SweepResult res;
  res.loss_pct = loss_pct;
  res.mode = retries_on ? "retries" : "oneshot";
  res.calls = kSweepCalls;
  std::vector<double> latencies_ms;
  for (const CallRec& rec : ctx.recs) {
    if (rec.completed && rec.status == Status::kOk) {
      ++res.ok;
      latencies_ms.push_back(sim::to_seconds(rec.done - rec.issued) * 1e3);
    }
  }
  res.success_pct = 100.0 * static_cast<double>(res.ok) /
                    static_cast<double>(res.calls);
  res.p50_ms = percentile(latencies_ms, 50.0);
  res.p99_ms = percentile(latencies_ms, 99.0);
  res.retries = api.retries_sent();
  res.replays = h.kernel.config().replay_cache().replays_served();
  return res;
}

struct FailoverResult {
  std::size_t calls = 0;
  std::size_t ok = 0;
  double success_pct = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t retries = 0;
  /// api.call_latency_us percentiles from the cluster metrics registry
  /// (enabled for this run; recording draws no randomness, so the failover
  /// outcome is identical with metrics off).
  double lat_p50_us = 0;
  double lat_p95_us = 0;
  double lat_p99_us = 0;
  std::uint64_t lat_count = 0;
  /// Full registry snapshot (counters/gauges/histograms), raw JSON.
  std::string metrics_json = "{}";
};

constexpr std::size_t kFailoverCalls = 60;

FailoverResult run_failover() {
  kernel::FtParams params;
  params.heartbeat_interval = 2 * sim::kSecond;
  params.detector_sample_interval = 1 * sim::kSecond;
  Harness h(bench_spec(), params);
  h.cluster.metrics().set_enabled(true);
  h.run_s(3.0);
  KernelApi api(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0],
                h.kernel);

  struct Ctx {
    KernelApi* api;
    std::size_t ok = 0;
    std::size_t completed = 0;
  } ctx{&api};

  auto& engine = h.cluster.engine();
  // 2 Hz stream of federated mutating calls...
  for (std::size_t i = 0; i < kFailoverCalls; ++i) {
    engine.schedule_after(static_cast<sim::SimTime>(i) * 500 *
                              sim::kMillisecond,
                          [&ctx, i] {
                            ctx.api->checkpoint_save(
                                "bench", "k" + std::to_string(i), "data",
                                [&ctx](KernelApi::Result<std::uint64_t> r) {
                                  ++ctx.completed;
                                  if (r.ok()) ++ctx.ok;
                                });
                          });
  }
  // ...and the client's home server node dies 10 s in, calls in flight.
  h.injector.schedule(h.cluster.now() + 10 * sim::kSecond,
                      [&h] {
                        h.injector.crash_node(
                            h.cluster.server_node(net::PartitionId{1}));
                      },
                      "crash home server");
  h.run_s(sim::to_seconds(kFailoverCalls * 500 * sim::kMillisecond) + 45.0);

  FailoverResult res;
  res.calls = kFailoverCalls;
  res.ok = ctx.ok;
  res.success_pct =
      100.0 * static_cast<double>(res.ok) / static_cast<double>(res.calls);
  res.reroutes = api.reroutes();
  res.retries = api.retries_sent();
  if (const obs::Histogram* lat =
          h.cluster.metrics().find_histogram("api.call_latency_us")) {
    res.lat_p50_us = lat->percentile(0.50);
    res.lat_p95_us = lat->percentile(0.95);
    res.lat_p99_us = lat->percentile(0.99);
    res.lat_count = lat->count();
  }
  res.metrics_json = h.cluster.metrics().snapshot_json();
  return res;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  using namespace phoenix;
  using namespace phoenix::bench;
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  const char* out_path = argc > 1 ? argv[1] : "BENCH_rpc_resilience.json";

  const double losses[] = {0.0, 1.0, 5.0, 20.0};
  std::vector<SweepResult> sweep;
  std::printf("%-6s | %-8s | %-9s | %-9s | %-9s | %-8s | %-8s\n", "loss%",
              "mode", "success%", "p50 ms", "p99 ms", "retries", "replays");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (double loss : losses) {
    for (bool retries_on : {false, true}) {
      SweepResult r = run_sweep(loss, retries_on);
      std::printf("%-6.0f | %-8s | %8.1f%% | %9.2f | %9.2f | %8llu | %8llu\n",
                  r.loss_pct, r.mode, r.success_pct, r.p50_ms, r.p99_ms,
                  static_cast<unsigned long long>(r.retries),
                  static_cast<unsigned long long>(r.replays));
      sweep.push_back(r);
    }
  }

  const FailoverResult fo = run_failover();
  std::printf("\nfailover: %zu/%zu calls ok (%.1f%%) across a mid-stream home"
              " server crash, %llu reroutes, %llu retries\n",
              fo.ok, fo.calls, fo.success_pct,
              static_cast<unsigned long long>(fo.reroutes),
              static_cast<unsigned long long>(fo.retries));
  std::printf("          call latency p50 %.0fus p95 %.0fus p99 %.0fus"
              " (%llu samples, api.call_latency_us)\n",
              fo.lat_p50_us, fo.lat_p95_us, fo.lat_p99_us,
              static_cast<unsigned long long>(fo.lat_count));

  // The §9 acceptance line: the retrying client holds >= 99% at 5% loss.
  bool ok = fo.success_pct >= 99.0;
  for (const SweepResult& r : sweep) {
    if (r.loss_pct == 5.0 && std::string(r.mode) == "retries" &&
        r.success_pct < 99.0) {
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "FAIL: resilience targets missed\n");
  }

  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f, "{\n  \"bench\": \"rpc_resilience\",\n  \"loss_sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SweepResult& r = sweep[i];
      std::fprintf(f,
                   "    {\"loss_pct\": %.0f, \"mode\": \"%s\", \"calls\": %zu,"
                   " \"ok\": %zu, \"success_pct\": %.1f, \"p50_ms\": %.2f,"
                   " \"p99_ms\": %.2f, \"retries\": %llu, \"replays\": %llu}%s\n",
                   r.loss_pct, r.mode, r.calls, r.ok, r.success_pct, r.p50_ms,
                   r.p99_ms, static_cast<unsigned long long>(r.retries),
                   static_cast<unsigned long long>(r.replays),
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"failover\": {\"calls\": %zu, \"ok\": %zu,"
                 " \"success_pct\": %.1f, \"reroutes\": %llu,"
                 " \"retries\": %llu,\n"
                 "    \"call_latency_us\": {\"count\": %llu, \"p50\": %.0f,"
                 " \"p95\": %.0f, \"p99\": %.0f}},\n",
                 fo.calls, fo.ok, fo.success_pct,
                 static_cast<unsigned long long>(fo.reroutes),
                 static_cast<unsigned long long>(fo.retries),
                 static_cast<unsigned long long>(fo.lat_count), fo.lat_p50_us,
                 fo.lat_p95_us, fo.lat_p99_us);
    // Raw registry snapshot from the failover run (already valid JSON).
    std::fprintf(f, "  \"metrics\": %s\n}\n", fo.metrics_json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return ok ? 0 : 1;
}
