// Reproduces paper Figure 6: "System Monitoring based on Phoenix Kernel" —
// a GridView snapshot of the full 640-node Dawning 4000A under common load
// (the paper reads ~51 % average memory usage, ~13 % average CPU usage and
// 0.72 % average swap usage).
//
// GridView interacts with the kernel only through the data bulletin / event
// / configuration interfaces; one query against any bulletin instance
// returns cluster-wide data (the single service access point).
#include <cstdio>

#include "bench_util.h"
#include "gridview/gridview.h"
#include "workload/resource_model.h"

using namespace phoenix;
using namespace phoenix::bench;

int main() {
  // Dawning 4000A scale: 640 nodes = 40 partitions x (1 server + 1 backup +
  // 14 compute).
  cluster::ClusterSpec spec;
  spec.partitions = 40;
  spec.computes_per_partition = 14;
  spec.backups_per_partition = 1;
  spec.cpus_per_node = 4;

  Harness h(spec);

  workload::ResourceModelParams load;  // defaults tuned to the Figure-6 snapshot
  workload::ResourceModel model(h.cluster, load);
  model.start();

  gridview::GridView view(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0],
                          h.kernel, 10 * sim::kSecond);
  view.start();

  h.run_s(120.0);

  std::printf("Figure 6 - GridView snapshot of a %zu-node cluster\n\n",
              h.cluster.node_count());
  std::printf("%s\n", view.render_dashboard().c_str());

  const auto& s = view.last_summary();
  std::printf("measured: %.2f%% avg CPU, %.2f%% avg MEM, %.2f%% avg SWAP over %zu nodes\n",
              s.avg_cpu_pct, s.avg_mem_pct, s.avg_swap_pct, s.node_count);
  std::printf("paper:    ~13%% avg CPU, ~51%% avg MEM, 0.72%% avg SWAP over 640 nodes\n");
  std::printf("single-access-point query latency: %s (partitions answering: %u/40)\n",
              sim::format_duration(view.last_refresh_latency()).c_str(),
              view.last_partitions_included());
  return 0;
}
