// Shared helpers for the paper-reproduction benches.
#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <optional>
#include <vector>
#include <string>

#include "faults/fault_injector.h"
#include "faults/scenario.h"
#include "kernel/kernel.h"

namespace phoenix::bench {

/// The paper's §5.1 testbed: 136 nodes in Dawning 4000A, 16 computing
/// nodes and 1 server node per partition, 8 partitions, 30 s heartbeat.
inline cluster::ClusterSpec paper_testbed() {
  cluster::ClusterSpec spec;
  spec.partitions = 8;
  spec.computes_per_partition = 16;
  spec.backups_per_partition = 0;
  spec.networks = 3;
  spec.cpus_per_node = 4;
  return spec;
}

struct Harness {
  explicit Harness(cluster::ClusterSpec spec, kernel::FtParams params = {})
      : cluster(spec), kernel(cluster, params), injector(cluster) {
    kernel.boot();
  }

  void run_s(double seconds) {
    cluster.engine().run_for(sim::from_seconds(seconds));
  }

  /// Advances to just after `node`'s next heartbeat — the paper's
  /// fault-injection point.
  void run_until_after_heartbeat(net::NodeId node) {
    const auto& wd = kernel.watch_daemon(node);
    const auto sent = wd.heartbeats_sent();
    while (wd.heartbeats_sent() == sent) {
      if (!cluster.engine().step()) break;
    }
    cluster.engine().run_for(10 * sim::kMillisecond);
  }

  cluster::Cluster cluster;
  kernel::PhoenixKernel kernel;
  faults::FaultInjector injector;
};

struct Timing {
  double detect_s = 0;
  double diagnose_s = 0;
  double recover_s = 0;
  double sum() const { return detect_s + diagnose_s + recover_s; }
};

inline Timing timing_from(const kernel::FaultRecord& record,
                          sim::SimTime injected_at) {
  Timing t;
  t.detect_s = sim::to_seconds(record.detected_at - injected_at);
  t.diagnose_s = sim::to_seconds(record.diagnosed_at - record.detected_at);
  t.recover_s =
      record.recovered ? sim::to_seconds(record.recovered_at - record.diagnosed_at) : -1;
  return t;
}

inline std::string fmt_seconds(double s) {
  char buf[32];
  if (s < 0) {
    std::snprintf(buf, sizeof(buf), "unrecovered");
  } else if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

inline void print_fault_table_header(const char* title) {
  std::printf("%s\n", title);
  std::printf("%-12s | %-21s | %-21s | %-21s | %-10s\n", "Fault", "Detect (paper)",
              "Diagnose (paper)", "Recover (paper)", "Sum");
  std::printf("%s\n", std::string(98, '-').c_str());
}

inline void print_fault_row(const char* fault, const Timing& t,
                            const char* paper_detect, const char* paper_diagnose,
                            const char* paper_recover) {
  std::printf("%-12s | %-9s (%-9s) | %-9s (%-9s) | %-9s (%-9s) | %s\n", fault,
              fmt_seconds(t.detect_s).c_str(), paper_detect,
              fmt_seconds(t.diagnose_s).c_str(), paper_diagnose,
              fmt_seconds(t.recover_s).c_str(), paper_recover,
              fmt_seconds(t.sum()).c_str());
}

/// Runs one fault scenario: settle, inject right after the victim node's
/// heartbeat, wait, and return the newest matching fault record's timings.
inline std::optional<Timing> run_fault_scenario(
    const kernel::FtParams& params, net::NodeId align_node,
    const std::function<sim::SimTime(Harness&)>& inject,
    const std::string& component, kernel::FaultKind kind,
    double settle_s = 65.0, double observe_s = 120.0) {
  Harness h(paper_testbed(), params);
  h.run_s(settle_s);
  h.kernel.fault_log().clear();
  h.run_until_after_heartbeat(align_node);
  const sim::SimTime injected = inject(h);
  h.run_s(observe_s);
  const auto record = h.kernel.fault_log().last(component, kind);
  if (!record) return std::nullopt;
  return timing_from(*record, injected);
}

/// Scenario flavour of run_fault_scenario: `script` authors a declarative
/// faults::Scenario against the settled harness, which is then compiled at
/// the aligned injection instant. Timings are measured from the scenario
/// base (its offset-0 steps fire at that same simulated instant the
/// imperative overload injects at, so the two flavours report identical
/// numbers for single-shot faults).
inline std::optional<Timing> run_fault_scenario(
    const kernel::FtParams& params, net::NodeId align_node,
    const std::function<void(Harness&, faults::Scenario&)>& script,
    const std::string& component, kernel::FaultKind kind,
    double settle_s = 65.0, double observe_s = 120.0) {
  Harness h(paper_testbed(), params);
  h.run_s(settle_s);
  h.kernel.fault_log().clear();
  h.run_until_after_heartbeat(align_node);
  faults::Scenario scenario;
  script(h, scenario);
  const sim::SimTime injected = h.cluster.now();
  scenario.apply(h.injector, injected);
  h.run_s(observe_s + sim::to_seconds(scenario.duration()));
  const auto record = h.kernel.fault_log().last(component, kind);
  if (!record) return std::nullopt;
  return timing_from(*record, injected);
}

/// Mean and standard deviation over repeated trials.
struct TrialStats {
  double mean = 0;
  double stddev = 0;
  std::size_t n = 0;
};

inline TrialStats stats_of(const std::vector<double>& xs) {
  TrialStats s;
  s.n = xs.size();
  if (xs.empty()) return s;
  for (double x : xs) s.mean += x;
  s.mean /= static_cast<double>(xs.size());
  for (double x : xs) s.stddev += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(s.stddev / static_cast<double>(xs.size() - 1))
                 : 0.0;
  return s;
}

/// Repeats a fault scenario with RANDOM injection phase (uniform within the
/// heartbeat period, rather than the paper's right-after-a-heartbeat worst
/// case) and returns detect/diagnose/recover statistics.
struct FaultTrialResult {
  TrialStats detect;
  TrialStats diagnose;
  TrialStats recover;
};

inline FaultTrialResult run_fault_trials(
    const kernel::FtParams& params,
    const std::function<sim::SimTime(Harness&)>& inject,
    const std::string& component, kernel::FaultKind kind, std::size_t trials,
    double settle_s = 65.0, double observe_s = 120.0) {
  std::vector<double> detect, diagnose, recover;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    cluster::ClusterSpec spec = paper_testbed();
    spec.seed = 1000 + trial;
    Harness h(spec, params);
    h.run_s(settle_s);
    h.kernel.fault_log().clear();
    // Random phase within one heartbeat period.
    sim::Rng phase_rng(90 + trial);
    h.run_s(phase_rng.uniform(0.0, sim::to_seconds(params.heartbeat_interval)));
    const sim::SimTime injected = inject(h);
    h.run_s(observe_s);
    const auto record = h.kernel.fault_log().last(component, kind);
    if (!record) continue;
    const Timing t = timing_from(*record, injected);
    detect.push_back(t.detect_s);
    diagnose.push_back(t.diagnose_s);
    if (t.recover_s >= 0) recover.push_back(t.recover_s);
  }
  return FaultTrialResult{stats_of(detect), stats_of(diagnose), stats_of(recover)};
}

}  // namespace phoenix::bench
