// Adversarial fault matrix: scenarios x failover policies.
//
// Each faults::Scenario from the adversarial vocabulary (leader crash,
// asymmetric partition, flapping links, correlated rack failure, slow node,
// GSD restart storm, plus the zoned-topology rows: zone-leader crash,
// whole-zone crash, zone network partition) runs once under the paper's
// unilateral takeover and once under FailoverPolicy::quorum(), with a
// LeaderInvariantMonitor sampling every 10 ms of simulated time. Zone rows
// run on a 9-partition zoned(3) hierarchy; the monitor then checks the
// split-brain invariant PER RING (each zone sub-ring and the top ring).
// Reported per cell:
//
//   viol        samples where >= 2 partitions led at the SAME epoch
//               (the split-brain the quorum protocol must prevent)
//   leaderless  longest stretch with no live leader (unavailability)
//   takeover    injection -> newest GSD fault record recovered (when the
//               scenario implies one)
//   fenced      stale-epoch mutating RPCs rejected across all runtimes
//
// Hard assertions (exit non-zero): the quorum policy shows ZERO same-epoch
// double-leader samples in every scenario, and the scenarios that depose a
// member recover a leader within a bounded window. The unilateral column is
// reported un-asserted — its asymmetric-partition split-brain is the
// motivation, not a regression.
//
// Emits BENCH_fault_matrix.json (or the first non-flag argument);
// --quick shortens the observation windows for CI.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "kernel/group/leader_monitor.h"

namespace phoenix::bench {
namespace {

// Five partitions so a correlated two-server rack failure still leaves a
// majority (3 of 5) able to regroup; the paper testbed's 17-node partitions
// are irrelevant to the membership protocol under test.
cluster::ClusterSpec matrix_spec() {
  cluster::ClusterSpec spec;
  spec.partitions = 5;
  spec.computes_per_partition = 4;
  spec.backups_per_partition = 2;
  spec.networks = 3;
  return spec;
}

kernel::FtParams matrix_params(bool quorum) {
  kernel::FtParams p;
  p.heartbeat_interval = 2 * sim::kSecond;
  p.detector_sample_interval = 1 * sim::kSecond;
  if (quorum) p.failover = kernel::FtParams::FailoverPolicy::quorum();
  return p;
}

// Zone rows: 9 partitions in 3 zones of 3 — each sub-ring big enough for a
// majority (2 of 3), and whole-zone death still leaves a top-ring majority.
cluster::ClusterSpec zoned_spec() {
  cluster::ClusterSpec spec;
  spec.partitions = 9;
  spec.computes_per_partition = 2;
  spec.backups_per_partition = 1;
  spec.networks = 3;
  return spec;
}

kernel::FtParams zoned_matrix_params(bool quorum) {
  kernel::FtParams p = matrix_params(quorum);
  p.topology = kernel::FtParams::GroupTopology::zoned(3);
  return p;
}

struct Cell {
  std::string scenario;
  const char* policy = "";
  std::uint64_t samples = 0;
  std::uint64_t violations = 0;
  int max_leaders = 0;
  double leaderless_s = 0;
  double takeover_s = -1;  // <0: no takeover happened / expected
  std::uint64_t regroup_rounds = 0;
  std::uint64_t quorum_losses = 0;
  std::uint64_t fenced = 0;
  std::size_t injections = 0;
};

struct ScenarioDef {
  const char* name;
  bool expects_takeover;  // a member is deposed and must be recovered
  std::function<void(Harness&, faults::Scenario&)> script;
  bool zoned = false;     // run on the 9-partition zoned(3) hierarchy
};

std::vector<ScenarioDef> scenario_defs() {
  using net::NetworkId;
  using net::PartitionId;
  return {
      {"leader_node_crash", true,
       [](Harness& h, faults::Scenario& s) {
         s.crash_node(h.cluster.server_node(PartitionId{0}));
       }},
      {"asymmetric_partition", false,
       [](Harness& h, faults::Scenario& s) {
         // Princess stops hearing the Leader; everyone else still can.
         s.partition_asymmetric(h.cluster.server_node(PartitionId{0}),
                                h.cluster.server_node(PartitionId{1}));
       }},
      {"flapping_links", false,
       [](Harness& h, faults::Scenario& s) {
         s.flap_link(h.cluster.server_node(PartitionId{1}), NetworkId{1},
                     4 * sim::kSecond, 3)
             .at(0)
             .flap_link(h.cluster.server_node(PartitionId{2}), NetworkId{2},
                        6 * sim::kSecond, 2);
       }},
      {"rack_failure", true,
       [](Harness& h, faults::Scenario& s) {
         s.crash_rack({h.cluster.server_node(PartitionId{2}),
                       h.cluster.server_node(PartitionId{3})});
       }},
      {"slow_node", true,
       [](Harness& h, faults::Scenario& s) {
         // Slower than every probe timeout: indistinguishable from dead, so
         // both policies depose it; fencing neutralises its stale writes.
         s.slow_node(h.cluster.server_node(PartitionId{1}), 900 * sim::kMillisecond)
             .after(20 * sim::kSecond)
             .restore_node_speed(h.cluster.server_node(PartitionId{1}));
       }},
      {"restart_storm", true,
       [](Harness& h, faults::Scenario& s) {
         s.restart_storm(h.kernel.gsd(PartitionId{3}), 3, 12 * sim::kSecond);
       }},
      {"zone_leader_crash", true,
       [](Harness& h, faults::Scenario& s) {
         // Zone 1's leader dies: its Princess must win the zone regroup AND
         // displace the stale entry on the top ring — two rings reconfigure
         // without a same-epoch double leader in either.
         s.crash_node(h.cluster.server_node(PartitionId{1}));
       },
       /*zoned=*/true},
      {"zone_crash", false,
       [](Harness& h, faults::Scenario& s) {
         // Whole-zone death: every node of zone 1 dies at once. The other
         // sub-rings must not churn; repair flows through the top census.
         s.crash_zone(h.kernel, 1);
       },
       /*zoned=*/true},
      {"zone_partition", false,
       [](Harness& h, faults::Scenario& s) {
         // Zone 1 is blackholed from the rest of the cluster, then healed.
         // Its sub-ring stays internally healthy (no zone takeover), while
         // the top ring drops and later re-admits its representative.
         s.partition_zone(h.kernel, 1)
             .after(20 * sim::kSecond)
             .heal_zone(h.kernel, 1);
       },
       /*zoned=*/true},
  };
}

Cell run_cell(const ScenarioDef& def, bool quorum, double observe_s) {
  Harness h(def.zoned ? zoned_spec() : matrix_spec(),
            def.zoned ? zoned_matrix_params(quorum) : matrix_params(quorum));
  kernel::LeaderInvariantMonitor monitor(h.kernel);
  h.run_s(5.0);
  h.kernel.fault_log().clear();

  faults::Scenario scenario;
  def.script(h, scenario);
  const sim::SimTime base = h.cluster.now();
  scenario.apply(h.injector, base);
  h.run_s(sim::to_seconds(scenario.duration()) + observe_s);

  Cell cell;
  cell.scenario = def.name;
  cell.policy = quorum ? "quorum" : "paper";
  cell.samples = monitor.samples();
  cell.violations = monitor.violations();
  cell.max_leaders = monitor.max_same_epoch_leaders();
  cell.leaderless_s = sim::to_seconds(monitor.max_leaderless());
  cell.injections = h.injector.history().size();
  if (def.expects_takeover) {
    if (const auto rec = h.kernel.fault_log().last("GSD");
        rec && rec->recovered) {
      cell.takeover_s = sim::to_seconds(rec->recovered_at - base);
    }
  }
  for (std::uint32_t p = 0; p < h.cluster.spec().partitions; ++p) {
    auto& gsd = h.kernel.gsd(net::PartitionId{p});
    if (!gsd.alive()) continue;
    cell.regroup_rounds += gsd.regroup_rounds();
    cell.quorum_losses += gsd.quorum_losses();
    cell.fenced += gsd.counters().fenced_rejections;
  }
  for (const auto& node : h.cluster.nodes()) {
    cell.fenced += h.kernel.ppm(node.id()).counters().fenced_rejections;
  }
  for (std::uint32_t p = 0; p < h.cluster.spec().partitions; ++p) {
    cell.fenced +=
        h.kernel.checkpoint_service(net::PartitionId{p}).counters().fenced_rejections;
  }
  return cell;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  using namespace phoenix;
  using namespace phoenix::bench;
  std::setvbuf(stdout, nullptr, _IONBF, 0);

  bool quick = false;
  const char* out_path = "BENCH_fault_matrix.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  // Long enough for detect (2 s hb) + regroup + migrate + rejoin per fault.
  const double observe_s = quick ? 40.0 : 80.0;

  std::printf("Adversarial fault matrix (scenario x failover policy)%s\n",
              quick ? " [--quick]" : "");
  std::printf("%-20s | %-6s | %-6s | %-7s | %-11s | %-9s | %-7s | %-6s\n",
              "scenario", "policy", "viol", "leaders", "leaderless", "takeover",
              "rounds", "fenced");
  std::printf("%s\n", std::string(92, '-').c_str());

  std::vector<Cell> cells;
  int failures = 0;
  for (const ScenarioDef& def : scenario_defs()) {
    for (bool quorum : {false, true}) {
      Cell cell = run_cell(def, quorum, observe_s);
      char takeover[24];
      if (cell.takeover_s >= 0) {
        std::snprintf(takeover, sizeof(takeover), "%.2fs", cell.takeover_s);
      } else {
        std::snprintf(takeover, sizeof(takeover), "-");
      }
      std::printf("%-20s | %-6s | %6llu | %7d | %9.2fs | %9s | %7llu | %6llu\n",
                  cell.scenario.c_str(), cell.policy,
                  static_cast<unsigned long long>(cell.violations),
                  cell.max_leaders, cell.leaderless_s, takeover,
                  static_cast<unsigned long long>(cell.regroup_rounds),
                  static_cast<unsigned long long>(cell.fenced));

      if (quorum) {
        if (cell.violations != 0) {
          std::printf("  FAIL: %s saw %llu same-epoch double-leader samples "
                      "under quorum\n",
                      cell.scenario.c_str(),
                      static_cast<unsigned long long>(cell.violations));
          ++failures;
        }
        if (def.expects_takeover &&
            (cell.takeover_s < 0 || cell.takeover_s > 30.0)) {
          std::printf("  FAIL: %s takeover not recovered within 30 s under "
                      "quorum (%.2fs)\n",
                      cell.scenario.c_str(), cell.takeover_s);
          ++failures;
        }
        if (def.expects_takeover && cell.leaderless_s > 30.0) {
          std::printf("  FAIL: %s leaderless for %.2fs under quorum\n",
                      cell.scenario.c_str(), cell.leaderless_s);
          ++failures;
        }
      }
      cells.push_back(std::move(cell));
    }
  }

  std::printf("\nunilateral vs quorum: the asymmetric-partition row shows the\n"
              "split-brain window the paper's protocol admits (viol > 0) and\n"
              "the regroup protocol closes (viol == 0, leader exonerated).\n");

  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f, "{\n  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(
          f,
          "    { \"scenario\": \"%s\", \"policy\": \"%s\", \"samples\": %llu,"
          " \"violations\": %llu, \"max_same_epoch_leaders\": %d,"
          " \"leaderless_s\": %.3f, \"takeover_s\": %.3f,"
          " \"regroup_rounds\": %llu, \"quorum_losses\": %llu,"
          " \"fenced_rejections\": %llu, \"injections\": %zu }%s\n",
          c.scenario.c_str(), c.policy,
          static_cast<unsigned long long>(c.samples),
          static_cast<unsigned long long>(c.violations), c.max_leaders,
          c.leaderless_s, c.takeover_s,
          static_cast<unsigned long long>(c.regroup_rounds),
          static_cast<unsigned long long>(c.quorum_losses),
          static_cast<unsigned long long>(c.fenced), c.injections,
          i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"failures\": %d\n}\n", failures);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  }

  return failures == 0 ? 0 : 1;
}
