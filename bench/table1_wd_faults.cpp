// Reproduces paper Table 1: "Three Unhealthy Situations for WD".
//
// Testbed: 136 nodes (8 partitions x [1 server + 16 compute]), heartbeat
// interval 30 s, faults injected right after a heartbeat. Paper values:
//   process: 30 s / 0.29 s / ~0.1 s  (sum 30.39 s)
//   node:    30 s / 2 s    / 0       (sum 32 s)
//   network: 30 s / 348 us / 0       (sum ~30 s)
#include <cstdio>

#include "bench_util.h"

using namespace phoenix;
using namespace phoenix::bench;

int main() {
  kernel::FtParams params;  // paper defaults: 30 s heartbeat

  print_fault_table_header(
      "Table 1 - Three Unhealthy Situations for WD (measured vs paper)");

  const auto process = run_fault_scenario(
      params, net::NodeId{5},
      [](Harness& h) {
        return h.injector.kill_daemon(h.kernel.watch_daemon(net::NodeId{5}));
      },
      "WD", kernel::FaultKind::kProcessFailure);
  if (process) print_fault_row("process", *process, "30s", "0.29s", "0.10s");

  const auto node = run_fault_scenario(
      params, net::NodeId{5},
      [](Harness& h) { return h.injector.crash_node(net::NodeId{5}); }, "WD",
      kernel::FaultKind::kNodeFailure);
  if (node) print_fault_row("node", *node, "30s", "2s", "0s");

  const auto network = run_fault_scenario(
      params, net::NodeId{5},
      [](Harness& h) {
        return h.injector.cut_interface(net::NodeId{5}, net::NetworkId{0});
      },
      "WD", kernel::FaultKind::kNetworkFailure);
  if (network) print_fault_row("network", *network, "30s", "348us", "0s");

  // Statistical view: the paper injects right after a heartbeat (worst
  // case, detect ~= interval); with uniformly random fault phases the
  // detection time is uniform in (0, interval].
  const auto trials = run_fault_trials(
      params,
      [](Harness& h) {
        return h.injector.kill_daemon(h.kernel.watch_daemon(net::NodeId{5}));
      },
      "WD", kernel::FaultKind::kProcessFailure, 8);
  std::printf(
      "\nrandom-phase statistics (%zu trials): detect %.2f±%.2fs (uniform in\n"
      "(0,30]s as expected), diagnose %.3f±%.3fs, recover %.3f±%.3fs\n",
      trials.detect.n, trials.detect.mean, trials.detect.stddev,
      trials.diagnose.mean, trials.diagnose.stddev, trials.recover.mean,
      trials.recover.stddev);

  std::printf(
      "\nThe sum of detecting, diagnosing and recovery time is ~= the\n"
      "heartbeat interval (30 s), as the paper reports. Sweep over the\n"
      "configurable interval:\n\n");
  std::printf("%-10s | %-10s | %-10s | %-10s | %-10s\n", "interval", "detect",
              "diagnose", "recover", "sum");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (const double interval_s : {1.0, 5.0, 15.0, 30.0}) {
    kernel::FtParams p;
    p.heartbeat_interval = sim::from_seconds(interval_s);
    const auto t = run_fault_scenario(
        p, net::NodeId{5},
        [](Harness& h) {
          return h.injector.kill_daemon(h.kernel.watch_daemon(net::NodeId{5}));
        },
        "WD", kernel::FaultKind::kProcessFailure, 2.5 * interval_s,
        4.0 * interval_s + 10.0);
    if (t) {
      std::printf("%-10s | %-10s | %-10s | %-10s | %-10s\n",
                  fmt_seconds(interval_s).c_str(), fmt_seconds(t->detect_s).c_str(),
                  fmt_seconds(t->diagnose_s).c_str(),
                  fmt_seconds(t->recover_s).c_str(), fmt_seconds(t->sum()).c_str());
    }
  }
  return 0;
}
