// PWS job management demo: multi-pool scheduling with different policies,
// dynamic leasing between pools, security-checked submission, and scheduler
// failover — the paper's §5.4 user environment, built purely on the kernel.
//
//   $ ./build/examples/pws_job_management
#include <cstdio>

#include "faults/fault_injector.h"
#include "kernel/kernel.h"
#include "pws/pws.h"
#include "workload/job_trace.h"

using namespace phoenix;

namespace {

void print_jobs(const pws::PwsScheduler& scheduler) {
  std::printf("  %-8s %-8s %-10s %-6s %-11s %-9s %s\n", "job", "user", "pool",
              "nodes", "state", "waited", "nodes used");
  for (const auto& [id, job] : scheduler.jobs()) {
    std::string nodes;
    for (net::NodeId n : job.allocated) {
      nodes += std::to_string(n.value);
      nodes += (scheduler.is_leased(n) ? "(leased) " : " ");
    }
    const double waited =
        job.started_at > 0 ? sim::to_seconds(job.started_at - job.submitted_at) : 0;
    std::printf("  %-8llu %-8s %-10s %-6u %-11s %8.1fs %s\n",
                static_cast<unsigned long long>(id), job.user.c_str(),
                job.pool.c_str(), job.nodes_needed,
                std::string(pws::to_string(job.state)).c_str(), waited,
                nodes.c_str());
  }
}

}  // namespace

int main() {
  cluster::ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 6;
  spec.backups_per_partition = 1;
  cluster::Cluster cluster(spec);

  kernel::FtParams params;
  params.heartbeat_interval = 2 * sim::kSecond;
  kernel::PhoenixKernel kernel(cluster, params);
  kernel.boot();

  // Two pools with different policies: "hpc" runs backfill over partition
  // 0's computes, "interactive" runs fair-share over partition 1's.
  pws::PwsConfig config;
  pws::PoolConfig hpc, interactive;
  hpc.name = "hpc";
  hpc.policy = pws::SchedPolicy::kBackfill;
  hpc.nodes = cluster.compute_nodes(net::PartitionId{0});
  interactive.name = "interactive";
  interactive.policy = pws::SchedPolicy::kFairShare;
  interactive.nodes = cluster.compute_nodes(net::PartitionId{1});
  config.pools = {hpc, interactive};
  pws::PwsSystem pws_system(kernel, config);
  cluster.engine().run_for(3 * sim::kSecond);

  auto submit = [&](const char* user, const char* pool, unsigned nodes,
                    double seconds) {
    pws::SubmitRequest r;
    r.user = user;
    r.pool = pool;
    r.nodes = nodes;
    r.duration = sim::from_seconds(seconds);
    return pws_system.submit(r);
  };

  std::printf("== submitting a mixed workload ==\n");
  submit("alice", "hpc", 5, 40.0);          // holds most of the hpc pool
  submit("alice", "hpc", 6, 30.0);          // blocked head -> reservation
  submit("bob", "hpc", 1, 8.0);             // backfills into the hole
  submit("carol", "interactive", 2, 15.0);
  submit("carol", "interactive", 2, 15.0);
  submit("dave", "interactive", 2, 15.0);   // fair share favors dave later
  const auto big = submit("erin", "hpc", 9, 20.0);  // 9 > 6 owned: leases from
                                                    // interactive when idle

  cluster.engine().run_for(10 * sim::kSecond);
  std::printf("\n== t=13s ==\n");
  print_jobs(pws_system.scheduler());

  // Kill the scheduler mid-flight: the GSD restarts it from checkpoint.
  std::printf("\n== killing the PWS scheduler (the GSD will restart it) ==\n");
  faults::FaultInjector injector(cluster);
  injector.kill_daemon(pws_system.scheduler());
  cluster.engine().run_for(10 * sim::kSecond);
  std::printf("  scheduler alive again: %s; job table survived: %zu jobs\n",
              pws_system.scheduler().alive() ? "yes" : "no",
              pws_system.scheduler().jobs().size());

  cluster.engine().run_for(120 * sim::kSecond);
  std::printf("\n== final state ==\n");
  print_jobs(pws_system.scheduler());
  const auto& stats = pws_system.scheduler().stats();
  std::printf("\n  submitted=%llu completed=%llu requeued=%llu leases=%llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.requeued),
              static_cast<unsigned long long>(stats.leases_granted));
  std::printf("  big job %llu leased nodes across pools: %s\n",
              static_cast<unsigned long long>(big),
              pws_system.scheduler().job(big)->state == pws::JobState::kCompleted
                  ? "completed"
                  : "did not complete");
  return 0;
}
