// System administration demo: status tables, parallel maintenance commands,
// node drain, and fault analysis over a failure-heavy hour of operation —
// the paper's "system management and monitoring tools" user environment.
//
//   $ ./build/examples/admin_console
#include <cstdio>

#include "admin/admin_console.h"
#include "faults/fault_injector.h"
#include "kernel/kernel.h"
#include "workload/resource_model.h"

using namespace phoenix;

int main() {
  cluster::ClusterSpec spec;
  spec.partitions = 4;
  spec.computes_per_partition = 6;
  spec.backups_per_partition = 1;
  cluster::Cluster cluster(spec);

  kernel::FtParams params;
  params.heartbeat_interval = 5 * sim::kSecond;
  kernel::PhoenixKernel kernel(cluster, params);
  kernel.boot();

  workload::ResourceModel model(cluster);
  model.start();

  admin::AdminConsole console(cluster, cluster.server_node(net::PartitionId{0}),
                              kernel);
  cluster.engine().run_for(10 * sim::kSecond);

  // Roll a "package upgrade" across the whole cluster with tree fan-out.
  std::printf("== parallel command: upgrade all %zu nodes ==\n",
              cluster.node_count());
  std::vector<net::NodeId> all;
  for (const auto& node : cluster.nodes()) all.push_back(node.id());
  const admin::CommandResult upgrade = console.run_command("pkg-upgrade", all, 8);
  std::printf("  %llu succeeded, %llu failed, wall time %s (tree fan-out 8)\n\n",
              static_cast<unsigned long long>(upgrade.succeeded),
              static_cast<unsigned long long>(upgrade.failed),
              sim::format_duration(upgrade.elapsed).c_str());

  // Drain a node for maintenance.
  const net::NodeId maintenance = cluster.compute_nodes(net::PartitionId{1})[0];
  kernel.ppm(maintenance).spawn_local(
      kernel::ProcessSpec{"user-workload", "alice", 2.0, 0, 0});
  cluster.engine().run_for(2 * sim::kSecond);
  std::printf("== draining node %u for maintenance ==\n", maintenance.value);
  console.drain_node(maintenance);
  cluster.engine().run_for(2 * sim::kSecond);
  std::printf("  drained=%s, user processes killed, kernel daemons untouched\n\n",
              console.is_drained(maintenance) ? "yes" : "no");

  faults::FaultInjector injector(cluster);

  // Planned maintenance on a server node: hand its partition services to
  // the backup first, then power it off — zero failure detection involved.
  const net::NodeId old_server = cluster.server_node(net::PartitionId{3});
  const net::NodeId backup = cluster.backup_nodes(net::PartitionId{3})[0];
  std::printf("== planned maintenance: handover partition 3 (node %u -> %u) ==\n",
              old_server.value, backup.value);
  console.handover_partition(net::PartitionId{3}, backup);
  cluster.engine().run_for(15 * sim::kSecond);
  std::printf("  GSD now on node %u; shutting the old server down...\n",
              kernel.gsd(net::PartitionId{3}).node_id().value);
  injector.crash_node(old_server);
  cluster.engine().run_for(10 * sim::kSecond);
  std::printf("  partition 3 services all up: %s\n\n",
              kernel.event_service(net::PartitionId{3}).alive() &&
                      kernel.bulletin(net::PartitionId{3}).alive()
                  ? "yes"
                  : "NO");

  // An eventful hour: injected failures, all healed by the kernel.
  injector.schedule(sim::from_seconds(60), [&] {
    injector.kill_daemon(kernel.watch_daemon(cluster.compute_nodes(net::PartitionId{2})[1]));
  }, "wd kill");
  injector.schedule(sim::from_seconds(300), [&] {
    injector.crash_node(cluster.compute_nodes(net::PartitionId{3})[2]);
  }, "compute crash");
  injector.schedule(sim::from_seconds(600), [&] {
    injector.crash_node(cluster.server_node(net::PartitionId{2}));
  }, "server crash");
  injector.schedule(sim::from_seconds(1500), [&] {
    injector.kill_daemon(kernel.event_service(net::PartitionId{0}));
  }, "es kill");
  cluster.engine().run_for(sim::kHour);

  std::printf("== status after one simulated hour ==\n%s\n",
              console.render_status().c_str());

  const admin::FaultAnalysis analysis = console.analyze_faults();
  std::printf("fault analysis: %zu faults, availability %.5f\n",
              analysis.total_faults, analysis.availability);
  return 0;
}
