// Building a brand-new user environment on the Phoenix kernel — the paper's
// central claim (§4.1, §5.4): "Based on Phoenix kernel, user environments
// can be easily constructed according to users' needs."
//
// This file constructs a complete "cluster alarm center" user environment —
// threshold alerts on CPU usage, failure paging, an escalation audit trail
// persisted through the checkpoint service, and a periodic health probe of
// every node — in under a hundred lines of logic, using only the uniform
// KernelApi facade. No kernel internals, no scalability or fault-tolerance
// code: the kernel provides all of it.
//
//   $ ./build/examples/custom_user_env
#include <cstdio>

#include "faults/fault_injector.h"
#include "kernel/api.h"
#include "workload/resource_model.h"

using namespace phoenix;

int main() {
  cluster::ClusterSpec spec;
  spec.partitions = 3;
  spec.computes_per_partition = 5;
  spec.backups_per_partition = 1;
  cluster::Cluster cluster(spec);

  kernel::FtParams params;
  params.heartbeat_interval = 2 * sim::kSecond;
  params.detector_sample_interval = 1 * sim::kSecond;
  kernel::PhoenixKernel kernel(cluster, params);
  kernel.boot();

  workload::ResourceModel model(cluster);
  model.start();
  cluster.engine().run_for(3 * sim::kSecond);

  // --- the whole user environment ------------------------------------------
  kernel::KernelApi api(cluster, cluster.compute_nodes(net::PartitionId{2})[0],
                        kernel);
  int pages_sent = 0;
  std::string audit_log;

  // 1. Page on any failure event, cluster-wide, via one subscription.
  api.subscribe({"node.*", "network.*", "service.*"}, [&](const kernel::Event& e) {
    ++pages_sent;
    audit_log += "[" + sim::format_duration(e.timestamp) + "] PAGE: " + e.type +
                 " node " + std::to_string(e.subject_node.value) + "\n";
    api.checkpoint_save("alarm-center", "audit", audit_log,
                        [](kernel::KernelApi::Result<std::uint64_t>) {});
    std::printf("  PAGE: %-18s node=%u\n", e.type.c_str(), e.subject_node.value);
  });

  // 2. Every 10 s, query the bulletin federation for hot nodes (one call,
  //    filter pushed down to every partition instance).
  sim::PeriodicTask hot_scan(cluster.engine(), 10 * sim::kSecond, [&] {
    kernel::BulletinFilter hot;
    hot.min_cpu_pct = 90.0;
    api.query(kernel::BulletinTable::kNodes, true, hot,
              [&](kernel::KernelApi::Result<kernel::BulletinSnapshot> r) {
                for (const auto& row : r.value.nodes) {
                  std::printf("  ALERT: node %u at %.1f%% CPU\n", row.node.value,
                              row.usage.cpu_pct);
                }
              });
  });
  hot_scan.start();

  // 3. Hourly configuration self-check via the configuration service.
  api.config_get("hardware/nodes",
                 [&](kernel::KernelApi::Result<std::optional<std::string>> r) {
                   std::printf("alarm center armed over %s nodes\n\n",
                               r.value ? r.value->c_str() : "?");
                 });
  cluster.engine().run_for(2 * sim::kSecond);

  // --- exercise it ------------------------------------------------------------
  faults::FaultInjector injector(cluster);
  std::printf("== injecting: hot node, NIC cut, node crash, service kill ==\n");
  // A CPU hog keeps one node pegged (the resource model folds process load
  // into the gauges the detectors export).
  api.spawn(cluster.compute_nodes(net::PartitionId{0})[1],
            kernel::ProcessSpec{"cpu-hog", "loadtest", 4.0, 0, 0},
            [](kernel::KernelApi::Result<cluster::Pid>) {});
  injector.cut_interface(cluster.compute_nodes(net::PartitionId{1})[0],
                         net::NetworkId{2});
  injector.crash_node(cluster.compute_nodes(net::PartitionId{0})[3]);
  injector.kill_daemon(kernel.event_service(net::PartitionId{1}));
  cluster.engine().run_for(20 * sim::kSecond);

  // The audit trail survived in the checkpoint federation.
  std::optional<std::string> recovered;
  api.checkpoint_load(
      "alarm-center", "audit",
      [&](kernel::KernelApi::Result<std::optional<std::string>> r) {
        recovered = std::move(r.value);
      });
  cluster.engine().run_for(2 * sim::kSecond);

  std::printf("\n%d pages sent; audit trail (%zu bytes) persisted in the "
              "checkpoint federation:\n%s",
              pages_sent, recovered ? recovered->size() : 0,
              recovered ? recovered->c_str() : "(missing)\n");
  std::printf(
      "\nTotal user-environment code: one subscription, one filtered query\n"
      "loop, one checkpoint key. Scalability, failover, and state recovery\n"
      "all came from the kernel.\n");
  return 0;
}
