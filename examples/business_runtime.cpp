// Business application runtime demo — the fourth user environment of the
// paper's Figure 1: a three-tier business application (web / app / db) kept
// highly available and load-balanced by the phoenix::biz runtime, which is
// built entirely on documented kernel interfaces (PPM deployment, detector
// events, bulletin load data).
//
//   $ ./build/examples/business_runtime
#include <cstdio>

#include "biz/business_runtime.h"
#include "faults/fault_injector.h"
#include "kernel/kernel.h"
#include "workload/resource_model.h"

using namespace phoenix;

int main() {
  cluster::ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 6;
  spec.backups_per_partition = 1;
  cluster::Cluster cluster(spec);

  kernel::FtParams params;
  params.heartbeat_interval = 2 * sim::kSecond;
  params.detector_sample_interval = 1 * sim::kSecond;
  kernel::PhoenixKernel kernel(cluster, params);
  kernel.boot();

  workload::ResourceModel model(cluster);
  model.start();

  biz::BizConfig config;
  config.tiers = {{"web", 4, 0.5}, {"app", 3, 1.0}, {"db", 2, 2.0}};
  config.placement = biz::PlacementPolicy::kLeastLoaded;
  config.request_interval = 200 * sim::kMillisecond;  // 5 requests/s
  biz::BusinessRuntime runtime(cluster, cluster.server_node(net::PartitionId{0}),
                               kernel, config);
  runtime.start();
  cluster.engine().run_for(5 * sim::kSecond);

  std::printf("== deployed ==\n  %s\n", runtime.render_status().c_str());

  faults::FaultInjector injector(cluster);

  std::printf("\n== killing one db replica process ==\n");
  // Find and kill one db-tier process directly in the node's process table.
  for (net::NodeId n : runtime.replica_nodes("db")) {
    for (const auto& proc : cluster.node(n).processes()) {
      if (proc.name == "biz.db" && proc.state == cluster::ProcessState::kRunning) {
        cluster.node(n).terminate_process(proc.pid, cluster::ProcessState::kKilled,
                                          cluster.now());
        goto killed;
      }
    }
  }
killed:
  cluster.engine().run_for(8 * sim::kSecond);
  std::printf("  %s\n", runtime.render_status().c_str());

  std::printf("\n== crashing a compute node hosting replicas ==\n");
  injector.crash_node(runtime.replica_nodes("web").front());
  cluster.engine().run_for(15 * sim::kSecond);
  std::printf("  %s\n", runtime.render_status().c_str());

  cluster.engine().run_for(60 * sim::kSecond);
  std::printf("\n== after one quiet minute ==\n  %s\n",
              runtime.render_status().c_str());
  std::printf(
      "\nrequest availability stayed at %.4f through a process kill and a node\n"
      "crash; every tier healed back to its target replica count without\n"
      "operator action.\n",
      runtime.stats().availability());
  return 0;
}
