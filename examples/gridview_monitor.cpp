// GridView monitoring demo at Dawning 4000A scale: 640 nodes, live
// dashboard refreshes, real-time failure notifications — the paper's §5.3
// user environment.
//
//   $ ./build/examples/gridview_monitor
#include <cstdio>

#include "faults/fault_injector.h"
#include "gridview/gridview.h"
#include "kernel/kernel.h"
#include "workload/resource_model.h"

using namespace phoenix;

int main() {
  // 640 nodes: 40 partitions x (1 server + 1 backup + 14 compute).
  cluster::ClusterSpec spec;
  spec.partitions = 40;
  spec.computes_per_partition = 14;
  spec.backups_per_partition = 1;

  cluster::Cluster cluster(spec);
  kernel::PhoenixKernel kernel(cluster);
  kernel.boot();

  workload::ResourceModel model(cluster);
  model.start();

  gridview::GridView view(cluster, cluster.compute_nodes(net::PartitionId{0})[0],
                          kernel, 10 * sim::kSecond);
  view.start();

  faults::FaultInjector injector(cluster);

  // Make it eventful: a compute node dies at t=60, a NIC at t=90, and a
  // whole server node (with its partition services) at t=120.
  injector.schedule(sim::from_seconds(60),
                    [&] { injector.crash_node(cluster.compute_nodes(net::PartitionId{7})[3]); },
                    "crash compute node");
  injector.schedule(sim::from_seconds(90),
                    [&] {
                      injector.cut_interface(cluster.compute_nodes(net::PartitionId{2})[0],
                                             net::NetworkId{1});
                    },
                    "cut one NIC");
  injector.schedule(sim::from_seconds(120),
                    [&] { injector.crash_node(cluster.server_node(net::PartitionId{11})); },
                    "crash server node");

  for (int minute = 1; minute <= 4; ++minute) {
    cluster.engine().run_for(60 * sim::kSecond);
    std::printf("=== t = %d min (simulated) ===\n%s\n", minute,
                view.render_dashboard().c_str());
  }

  std::printf("events received in real time: %zu\n", view.events().size());
  std::printf("partition 11's GSD migrated to node %u and the cluster-wide query "
              "still answers %u/40 partitions\n",
              kernel.gsd(net::PartitionId{11}).node_id().value,
              view.last_partitions_included());
  return 0;
}
