// Fault-tolerance demo: crash an entire server node and watch the
// meta-group reform the ring, migrate the partition's GSD and kernel
// services to the backup node, and keep the federations answering.
//
//   $ ./build/examples/fault_tolerance_demo
#include <cstdio>

#include "faults/fault_injector.h"
#include "gridview/gridview.h"
#include "kernel/kernel.h"
#include "workload/resource_model.h"

using namespace phoenix;

namespace {

void print_ring(kernel::PhoenixKernel& kernel, std::size_t partitions) {
  const auto& view = kernel.gsd(net::PartitionId{0}).alive()
                         ? kernel.gsd(net::PartitionId{0}).view()
                         : kernel.gsd(net::PartitionId{1}).view();
  std::printf("  meta-group view %llu: ",
              static_cast<unsigned long long>(view.view_id));
  for (std::size_t i = 0; i < view.members.size(); ++i) {
    const auto& m = view.members[i];
    std::printf("%sP%u@n%u%s", i == 0 ? "[leader] " : (i == 1 ? "[princess] " : ""),
                m.partition.value, m.gsd.node.value,
                i + 1 < view.members.size() ? " -> " : "\n");
  }
  (void)partitions;
}

}  // namespace

int main() {
  cluster::ClusterSpec spec;
  spec.partitions = 4;
  spec.computes_per_partition = 6;
  spec.backups_per_partition = 1;

  cluster::Cluster cluster(spec);
  kernel::FtParams params;
  params.heartbeat_interval = 2 * sim::kSecond;
  kernel::PhoenixKernel kernel(cluster, params);
  kernel.boot();

  workload::ResourceModel model(cluster);
  model.start();

  gridview::GridView view(cluster, cluster.compute_nodes(net::PartitionId{3})[0],
                          kernel, 5 * sim::kSecond);
  view.start();

  cluster.engine().run_for(6 * sim::kSecond);
  std::printf("== steady state ==\n");
  print_ring(kernel, spec.partitions);

  // Crash partition 1's server node: GSD, ES, CS and DB die with it.
  const net::NodeId server = cluster.server_node(net::PartitionId{1});
  const net::NodeId backup = cluster.backup_nodes(net::PartitionId{1})[0];
  std::printf("\n== crashing server node %u of partition 1 (backup is node %u) ==\n",
              server.value, backup.value);
  faults::FaultInjector injector(cluster);
  injector.crash_node(server);

  cluster.engine().run_for(15 * sim::kSecond);
  std::printf("\n== after detection + migration ==\n");
  print_ring(kernel, spec.partitions);
  std::printf("  GSD of partition 1 now on node %u (%s)\n",
              kernel.gsd(net::PartitionId{1}).node_id().value,
              std::string(cluster::to_string(
                  cluster.node(kernel.gsd(net::PartitionId{1}).node_id()).role()))
                  .c_str());
  std::printf("  ES  of partition 1 now on node %u, alive=%s\n",
              kernel.event_service(net::PartitionId{1}).node_id().value,
              kernel.event_service(net::PartitionId{1}).alive() ? "yes" : "no");

  std::printf("\n  fault records:\n");
  for (const auto& r : kernel.fault_log().records()) {
    std::printf("    %-4s %-8s node=%-3u +%s detect, +%s diagnose, +%s recover\n",
                r.component.c_str(), std::string(kernel::to_string(r.kind)).c_str(),
                r.node.value, sim::format_duration(r.detected_at).c_str(),
                sim::format_duration(r.diagnosed_at - r.detected_at).c_str(),
                r.recovered
                    ? sim::format_duration(r.recovered_at - r.diagnosed_at).c_str()
                    : "pending");
  }

  std::printf("\n  GridView saw %zu events; dashboard:\n\n%s\n", view.events().size(),
              view.render_dashboard().c_str());

  // Bring the node back: it rejoins as a healthy spare.
  std::printf("== restoring node %u ==\n", server.value);
  injector.restore_node(server);
  kernel.watch_daemon(server).start();
  kernel.detector(server).start();
  kernel.ppm(server).start();
  cluster.engine().run_for(8 * sim::kSecond);
  std::printf("  node %u reported recovered; GSD stays on node %u (no failback "
              "churn)\n",
              server.value, kernel.gsd(net::PartitionId{1}).node_id().value);
  return 0;
}
