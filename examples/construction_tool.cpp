// System construction tool demo (paper §3): plan and execute a staged,
// verified boot of a cluster that has some hardware already broken, then
// show the resulting system running.
//
//   $ ./build/examples/construction_tool
#include <cstdio>

#include "construct/constructor.h"
#include "faults/fault_injector.h"

using namespace phoenix;

int main() {
  cluster::ClusterSpec spec;
  spec.partitions = 6;
  spec.computes_per_partition = 8;
  spec.backups_per_partition = 1;
  cluster::Cluster cluster(spec);

  // Realistic delivery: two compute nodes arrive dead and one NIC is bad.
  cluster.crash_node(cluster.compute_nodes(net::PartitionId{2})[1]);
  cluster.crash_node(cluster.compute_nodes(net::PartitionId{4})[5]);
  cluster.fabric().set_interface_up(cluster.compute_nodes(net::PartitionId{0})[3],
                                    net::NetworkId{2}, false);

  kernel::FtParams params;
  params.heartbeat_interval = 2 * sim::kSecond;
  params.detector_sample_interval = 1 * sim::kSecond;
  kernel::PhoenixKernel kernel(cluster, params);

  construct::SystemConstructor constructor(kernel);

  std::printf("== boot plan (dry run) ==\n");
  for (const auto& step : constructor.plan()) {
    std::printf("  %s\n", step.c_str());
  }

  std::printf("\n== executing staged boot ==\n");
  const construct::BootReport report = constructor.execute();
  std::printf("%s\n", report.to_string().c_str());

  std::printf("== system state after construction ==\n");
  std::printf("  meta-group: %zu members, leader partition %u\n",
              kernel.gsd(net::PartitionId{0}).view().members.size(),
              kernel.gsd(net::PartitionId{0}).view().leader()->partition.value);
  std::printf("  configuration knows %zu hardware keys\n",
              kernel.config().keys_with_prefix("hardware/").size());

  // The bad NIC gets noticed by normal operation soon after boot.
  cluster.engine().run_for(10 * sim::kSecond);
  for (const auto& r : kernel.fault_log().records()) {
    if (r.kind == kernel::FaultKind::kNetworkFailure) {
      std::printf("  post-boot health: network %u of node %u flagged (diagnosed in %s)\n",
                  r.network.value, r.node.value,
                  sim::format_duration(r.diagnosed_at - r.detected_at).c_str());
    }
  }
  return 0;
}
