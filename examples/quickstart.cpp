// Quickstart: boot a Phoenix kernel on a small simulated cluster, look
// around, subscribe to events, inject a failure, and watch the kernel heal.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "faults/fault_injector.h"
#include "kernel/kernel.h"

using namespace phoenix;

namespace {

/// A tiny event consumer: prints every notification it receives.
class PrintingConsumer final : public cluster::Daemon {
 public:
  PrintingConsumer(cluster::Cluster& cluster, net::NodeId node)
      : Daemon(cluster, "printer", node, cluster::ports::kClient) {
    start();
  }

 private:
  void handle(const net::Envelope& env) override {
    if (const auto* notify = net::message_cast<kernel::EsNotifyMsg>(*env.message)) {
      std::printf("  [%8s] event: %-18s node=%u %s\n",
                  sim::format_duration(now()).c_str(), notify->event.type.c_str(),
                  notify->event.subject_node.value,
                  notify->event.attr("service").c_str());
    }
  }
};

}  // namespace

int main() {
  // 1. Describe the cluster: 2 partitions, each 1 server + 1 backup + 4
  //    compute nodes, 3 networks per node (the Dawning 4000A layout).
  cluster::ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 4;
  spec.backups_per_partition = 1;

  cluster::Cluster cluster(spec);

  // 2. Boot the kernel: watch daemons, detectors, PPM on every node; GSD,
  //    event/checkpoint/bulletin services per partition; config + security.
  kernel::FtParams params;
  params.heartbeat_interval = 2 * sim::kSecond;  // quick demo cadence
  kernel::PhoenixKernel kernel(cluster, params);
  kernel.boot();
  cluster.engine().run_for(5 * sim::kSecond);

  std::printf("booted %zu nodes in %zu partitions; meta-group view: %zu members, "
              "leader = partition %u\n\n",
              cluster.node_count(), spec.partitions,
              kernel.gsd(net::PartitionId{0}).view().members.size(),
              kernel.gsd(net::PartitionId{0}).view().leader()->partition.value);

  // 3. The configuration service introspected the hardware at boot.
  std::printf("configuration: hardware/nodes = %s, hardware/networks = %s\n\n",
              kernel.config().get("hardware/nodes")->c_str(),
              kernel.config().get("hardware/networks")->c_str());

  // 4. Subscribe to failure/recovery events through the event service.
  PrintingConsumer consumer(cluster, cluster.compute_nodes(net::PartitionId{1})[0]);
  kernel::Subscription sub;
  sub.consumer = consumer.address();  // all event types
  auto subscribe = std::make_shared<kernel::EsSubscribeMsg>();
  subscribe->subscription = sub;
  kernel.event_service(net::PartitionId{1}).subscribe_local(sub);
  cluster.engine().run_for(1 * sim::kSecond);

  // 5. Inject a watch-daemon failure and let the group service repair it.
  faults::FaultInjector injector(cluster);
  const net::NodeId victim = cluster.compute_nodes(net::PartitionId{0})[2];
  std::printf("killing the watch daemon on node %u...\n", victim.value);
  injector.kill_daemon(kernel.watch_daemon(victim));
  cluster.engine().run_for(10 * sim::kSecond);

  // 6. Inspect the fault log: detection, diagnosis, recovery timestamps.
  std::printf("\nfault log:\n");
  for (const auto& record : kernel.fault_log().records()) {
    std::printf("  %-4s %-8s on node %-3u detect->diagnose %-10s diagnose->recover %s\n",
                record.component.c_str(),
                std::string(kernel::to_string(record.kind)).c_str(),
                record.node.value,
                sim::format_duration(record.diagnosed_at - record.detected_at).c_str(),
                record.recovered
                    ? sim::format_duration(record.recovered_at - record.diagnosed_at).c_str()
                    : "pending");
  }
  std::printf("\nwatch daemon alive again: %s\n",
              kernel.watch_daemon(victim).alive() ? "yes" : "no");
  return 0;
}
