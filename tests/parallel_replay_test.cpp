// Replay equivalence between the sequential reference mode and threaded
// parallel execution (same shape as scheduler_edge_test's old-vs-new replay):
// a mixed workload — per-node heartbeat timers (scheduler traffic), fabric
// sends with acks (transport traffic), and partition-server event fan-out to
// cross-shard subscribers (event-service traffic) — is run on a 4-shard
// world single-threaded and with 4 worker threads, asserting identical
// per-node event order and identical final state.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/shard_map.h"
#include "net/fabric.h"
#include "sim/parallel_engine.h"

namespace phoenix {
namespace {

using net::Address;
using net::NetworkId;
using net::NodeId;
using net::PortId;
using sim::SimTime;

struct HeartbeatMsg final : net::Message {
  std::uint32_t from_node = 0;
  std::uint64_t seq = 0;
  PHOENIX_MESSAGE_TYPE("replay.heartbeat")
  std::size_t wire_size() const noexcept override { return 48; }
};

struct AckMsg final : net::Message {
  std::uint64_t seq = 0;
  PHOENIX_MESSAGE_TYPE("replay.ack")
  std::size_t wire_size() const noexcept override { return 16; }
};

struct FanoutEventMsg final : net::Message {
  std::uint32_t publisher = 0;
  std::uint64_t seq = 0;
  PHOENIX_MESSAGE_TYPE("replay.event")
  std::size_t wire_size() const noexcept override { return 96; }
};

// Everything a node accumulates during the run. Only ever touched from the
// thread executing the node's shard.
struct NodeState {
  std::uint64_t ticks = 0;
  std::uint64_t heartbeats_seen = 0;
  std::uint64_t acks_seen = 0;
  std::uint64_t events_seen = 0;
  std::uint64_t checksum = 0;
  // (time, label) per event touching this node, in execution order.
  std::vector<std::pair<SimTime, std::uint64_t>> log;

  friend bool operator==(const NodeState&, const NodeState&) = default;
};

// 8 partitions x (server + backup + 6 computes) = 64 nodes on 4 shards.
constexpr std::size_t kPartitions = 8;
constexpr std::size_t kNodesPerPartition = 8;
constexpr std::size_t kNodes = kPartitions * kNodesPerPartition;
constexpr std::size_t kShards = 4;
constexpr SimTime kHorizon = 60 * sim::kMillisecond;
constexpr PortId kPort{7};

struct ReplayWorld {
  explicit ReplayWorld(std::size_t threads)
      : map(cluster::ShardMap::partition_blocks(kPartitions, kNodesPerPartition,
                                                kShards)),
        pe({.shards = kShards,
            .threads = threads,
            .lookahead = net::LatencyModel{}.min_latency(),
            .seed = 97}),
        fabric(pe, map.node_shards(), /*network_count=*/2),
        state(kNodes) {
    fabric.set_group_size(kNodesPerPartition);  // partition = edge switch
    fabric.set_delivery_handler([this](const net::Envelope& env) { on_delivery(env); });
  }

  static NodeId server_of(std::size_t partition) {
    return NodeId{static_cast<std::uint32_t>(partition * kNodesPerPartition)};
  }
  static std::size_t partition_of(NodeId n) {
    return n.value / kNodesPerPartition;
  }
  sim::Engine& engine_of(NodeId n) { return pe.shard(map.shard_of(n)); }

  void note(NodeId n, std::uint64_t label) {
    NodeState& st = state[n.value];
    const SimTime now = engine_of(n).now();
    st.log.push_back({now, label});
    st.checksum = st.checksum * 1'000'000'007ULL + label * 31 + now;
  }

  // -- scheduler traffic: self-rearming per-node heartbeat timers -----------

  void tick(NodeId n) {
    sim::Engine& eng = engine_of(n);
    NodeState& st = state[n.value];
    ++st.ticks;
    note(n, 1'000 + st.ticks);

    // Heartbeat to the home partition server (intra-shard by construction).
    auto hb = std::make_shared<HeartbeatMsg>();
    hb->from_node = n.value;
    hb->seq = st.ticks;
    const NetworkId net{static_cast<std::uint8_t>(st.ticks % 2)};
    fabric.send({n, kPort}, {server_of(partition_of(n)), kPort}, net, hb);

    // Every 4th tick also reports to a deterministic remote partition server
    // (usually cross-shard).
    if (st.ticks % 4 == 0) {
      const std::size_t remote =
          (partition_of(n) + 1 + (n.value + st.ticks) % (kPartitions - 1)) %
          kPartitions;
      auto report = std::make_shared<HeartbeatMsg>();
      report->from_node = n.value;
      report->seq = st.ticks;
      fabric.send({n, kPort}, {server_of(remote), kPort}, net, report);
    }

    // Re-arm with a period drawn from the owning shard's RNG stream.
    const SimTime period = 200 + eng.rng().next() % 400;
    eng.schedule_after(period, [this, n] { tick(n); });
  }

  // -- event-service-style traffic: servers fan out to subscribers ----------

  void publish(std::size_t partition, std::uint64_t seq) {
    const NodeId pub = server_of(partition);
    note(pub, 3'000 + seq);
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      // Subscriber registry: a fixed, cluster-wide subset of compute nodes.
      if (n % 5 == 2 && partition_of(NodeId{n}) != partition) {
        auto ev = std::make_shared<FanoutEventMsg>();
        ev->publisher = pub.value;
        ev->seq = seq;
        fabric.send({pub, kPort}, {NodeId{n}, kPort}, NetworkId{0}, ev);
      }
    }
    engine_of(pub).schedule_after(sim::kMillisecond,
                                  [this, partition, seq] { publish(partition, seq + 1); });
  }

  // -- fabric delivery: count, log, and ack ---------------------------------

  void on_delivery(const net::Envelope& env) {
    const NodeId n = env.to.node;
    NodeState& st = state[n.value];
    if (const auto* hb = net::message_cast<HeartbeatMsg>(*env.message)) {
      ++st.heartbeats_seen;
      note(n, (static_cast<std::uint64_t>(hb->from_node) << 20) | hb->seq);
      // Every 3rd heartbeat the server acks back (reply traffic from the
      // receiving shard's context).
      if (st.heartbeats_seen % 3 == 0) {
        auto ack = std::make_shared<AckMsg>();
        ack->seq = hb->seq;
        fabric.send({n, kPort}, {NodeId{hb->from_node}, kPort}, env.network, ack);
      }
    } else if (const auto* ack = net::message_cast<AckMsg>(*env.message)) {
      ++st.acks_seen;
      note(n, 2'000'000 + ack->seq);
    } else if (const auto* ev = net::message_cast<FanoutEventMsg>(*env.message)) {
      ++st.events_seen;
      note(n, 3'000'000 + (static_cast<std::uint64_t>(ev->publisher) << 10) +
                  (ev->seq & 1023));
    }
  }

  std::uint64_t run() {
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      engine_of(NodeId{n}).schedule_at(1 + n % 97,
                                       [this, id = NodeId{n}] { tick(id); });
    }
    for (std::size_t p = 0; p < kPartitions; ++p) {
      engine_of(server_of(p)).schedule_at(500 + 37 * p,
                                          [this, p] { publish(p, 1); });
    }
    return pe.run_until(kHorizon);
  }

  cluster::ShardMap map;
  sim::ParallelEngine pe;
  net::ShardedFabric fabric;
  std::vector<NodeState> state;
};

TEST(ParallelReplayTest, FourShardParallelMatchesSingleThreadedReference) {
  ReplayWorld reference(/*threads=*/0);  // the single-threaded reference
  const std::uint64_t ref_events = reference.run();
  ASSERT_GT(ref_events, 10'000u) << "workload must exceed 10k events";
  ASSERT_GT(reference.pe.cross_posted(), 500u)
      << "workload must exercise cross-shard mailboxes heavily";
  ASSERT_GT(reference.fabric.cross_shard_sent(), 500u);

  ReplayWorld parallel(/*threads=*/4);
  const std::uint64_t par_events = parallel.run();

  EXPECT_EQ(par_events, ref_events);
  EXPECT_EQ(parallel.pe.cross_posted(), reference.pe.cross_posted());
  EXPECT_EQ(parallel.pe.cross_delivered(), reference.pe.cross_delivered());

  // Identical per-node event order and final state, node by node.
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    const NodeState& a = reference.state[n];
    const NodeState& b = parallel.state[n];
    ASSERT_EQ(a.log.size(), b.log.size()) << "node " << n;
    for (std::size_t i = 0; i < a.log.size(); ++i) {
      ASSERT_EQ(a.log[i], b.log[i]) << "node " << n << " diverges at event " << i;
    }
    ASSERT_EQ(a, b) << "final state mismatch on node " << n;
  }

  // The aggregate wire accounting must agree too.
  const net::NetworkStats ref_stats = reference.fabric.total_stats();
  const net::NetworkStats par_stats = parallel.fabric.total_stats();
  EXPECT_EQ(par_stats.messages_sent, ref_stats.messages_sent);
  EXPECT_EQ(par_stats.bytes_sent, ref_stats.bytes_sent);
  EXPECT_EQ(par_stats.messages_dropped, ref_stats.messages_dropped);
  EXPECT_EQ(par_stats.bytes_by_type.get("replay.heartbeat"),
            ref_stats.bytes_by_type.get("replay.heartbeat"));
  EXPECT_EQ(par_stats.bytes_by_type.get("replay.event"),
            ref_stats.bytes_by_type.get("replay.event"));
}

TEST(ParallelReplayTest, TwoThreadRunMatchesToo) {
  // Shards > threads: two workers own two shards each — the drain protocol
  // must still serialize identically.
  ReplayWorld reference(0);
  reference.run();
  ReplayWorld two(2);
  two.run();
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    ASSERT_EQ(reference.state[n], two.state[n]) << "node " << n;
  }
}

}  // namespace
}  // namespace phoenix
