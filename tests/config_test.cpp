// Configuration service tests: key tree, versioning, introspection,
// change hooks, and the message interface.
#include "kernel/config/configuration_service.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::TestClient;

class ConfigTest : public ::testing::Test {
 protected:
  ConfigTest()
      : cluster(phoenix::testing::small_cluster_spec()),
        service(cluster, net::NodeId{0}) {
    service.start();
  }

  cluster::Cluster cluster;
  ConfigurationService service;
};

TEST_F(ConfigTest, GetMissingKeyReturnsNullopt) {
  EXPECT_FALSE(service.get("nope").has_value());
}

TEST_F(ConfigTest, SetThenGet) {
  service.set("a/b", "value");
  ASSERT_TRUE(service.get("a/b").has_value());
  EXPECT_EQ(*service.get("a/b"), "value");
}

TEST_F(ConfigTest, VersionsAreMonotonic) {
  const auto v1 = service.set("k", "1");
  const auto v2 = service.set("k", "2");
  const auto v3 = service.set("other", "x");
  EXPECT_LT(v1, v2);
  EXPECT_LT(v2, v3);
  EXPECT_EQ(service.version(), v3);
  EXPECT_EQ(*service.get("k"), "2");
}

TEST_F(ConfigTest, EraseRemovesKey) {
  service.set("gone", "soon");
  EXPECT_TRUE(service.erase("gone"));
  EXPECT_FALSE(service.erase("gone"));
  EXPECT_FALSE(service.get("gone").has_value());
}

TEST_F(ConfigTest, PrefixQuery) {
  service.set("hw/node/0", "a");
  service.set("hw/node/1", "b");
  service.set("hw/other", "c");
  service.set("zz", "d");
  const auto keys = service.keys_with_prefix("hw/node/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "hw/node/0");
  EXPECT_EQ(keys[1], "hw/node/1");
  EXPECT_EQ(service.keys_with_prefix("nomatch").size(), 0u);
}

TEST_F(ConfigTest, IntrospectionPopulatesHardwareBranch) {
  service.introspect();
  EXPECT_EQ(*service.get("hardware/partitions"), "2");
  EXPECT_EQ(*service.get("hardware/nodes"), "12");
  EXPECT_EQ(*service.get("hardware/networks"), "3");
  EXPECT_EQ(*service.get("hardware/node/0/role"), "server");
  EXPECT_EQ(*service.get("hardware/node/1/role"), "backup");
  EXPECT_EQ(*service.get("hardware/node/2/role"), "compute");
  EXPECT_EQ(*service.get("hardware/node/6/partition"), "1");
  EXPECT_EQ(*service.get("hardware/node/0/cpus"), "4");
}

TEST_F(ConfigTest, ChangeHookFires) {
  std::vector<std::string> changed;
  service.set_change_hook(
      [&](const std::string& key, const std::string&, std::uint64_t) {
        changed.push_back(key);
      });
  service.set("x", "1");
  service.set("y", "2");
  EXPECT_EQ(changed, (std::vector<std::string>{"x", "y"}));
}

TEST_F(ConfigTest, MessageGetAndSet) {
  TestClient client(cluster, net::NodeId{2});
  auto set = std::make_shared<ConfigSetMsg>();
  set->key = "remote";
  set->value = "hello";
  set->reply_to = client.address();
  set->request_id = 7;
  client.send_any(service.address(), set);
  cluster.engine().run();
  const auto* set_reply = client.last_of_type<ConfigSetReplyMsg>();
  ASSERT_NE(set_reply, nullptr);
  EXPECT_EQ(set_reply->request_id, 7u);
  EXPECT_GT(set_reply->version, 0u);

  auto get = std::make_shared<ConfigGetMsg>();
  get->key = "remote";
  get->reply_to = client.address();
  get->request_id = 8;
  client.send_any(service.address(), get);
  cluster.engine().run();
  const auto* get_reply = client.last_of_type<ConfigGetReplyMsg>();
  ASSERT_NE(get_reply, nullptr);
  EXPECT_TRUE(get_reply->found);
  EXPECT_EQ(get_reply->value, "hello");
}

TEST_F(ConfigTest, MessageGetMissingKey) {
  TestClient client(cluster, net::NodeId{2});
  auto get = std::make_shared<ConfigGetMsg>();
  get->key = "missing";
  get->reply_to = client.address();
  client.send_any(service.address(), get);
  cluster.engine().run();
  const auto* reply = client.last_of_type<ConfigGetReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->found);
}

TEST(ConfigKernelTest, DirectoryUpdatesLandInConfig) {
  phoenix::testing::KernelHarness h(phoenix::testing::small_cluster_spec(),
                                    phoenix::testing::fast_ft_params());
  h.run_s(1.0);
  // The kernel mirrors service placement into the configuration tree.
  h.kernel.set_service_node(ServiceKind::kEventService, net::PartitionId{1},
                            net::NodeId{7});
  EXPECT_EQ(*h.kernel.config().get("services/es/1/node"), "7");
}

}  // namespace
}  // namespace phoenix::kernel
