// Hierarchical group management (FtParams::GroupTopology::zoned(n)): zone
// sub-rings, the top ring of zone leaders, promotion/displacement, per-ring
// epoch fencing, and the zone fault verbs. The golden-bytes test at the top
// pins the flat wire format the zoned refactor must never disturb.
#include <gtest/gtest.h>

#include "kernel/group/leader_monitor.h"
#include "kernel/group/meta_group.h"
#include "kernel_fixture.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

cluster::ClusterSpec nine_spec() {
  cluster::ClusterSpec spec;
  spec.partitions = 9;
  spec.computes_per_partition = 2;
  spec.backups_per_partition = 1;
  return spec;
}

cluster::ClusterSpec twelve_spec() {
  cluster::ClusterSpec spec;
  spec.partitions = 12;
  spec.computes_per_partition = 2;
  spec.backups_per_partition = 1;
  return spec;
}

kernel::FtParams zoned_params(std::uint32_t zone_size) {
  kernel::FtParams p = fast_ft_params();
  p.topology = FtParams::GroupTopology::zoned(zone_size);
  return p;
}

kernel::FtParams zoned_quorum_params(std::uint32_t zone_size) {
  kernel::FtParams p = zoned_params(zone_size);
  p.failover = FtParams::FailoverPolicy::quorum();
  return p;
}

// --- golden bytes: the flat wire format is frozen -----------------------------

TEST(MetaViewGoldenBytesTest, FlatEpochZeroViewSerializesToExactLegacyBytes) {
  // An epoch-0 view (everything the paper experiments checkpoint) must emit
  // EXACTLY the legacy byte sequence: "view_id|part,node,port,inc|...". No
  // epoch token, no scope token, nothing the zoned refactor introduced.
  MetaView v;
  v.view_id = 1;
  v.members.push_back({net::PartitionId{0}, {net::NodeId{0}, net::PortId{3}}, 0});
  v.members.push_back({net::PartitionId{1}, {net::NodeId{8}, net::PortId{3}}, 0});
  v.members.push_back({net::PartitionId{2}, {net::NodeId{16}, net::PortId{3}}, 7});
  EXPECT_EQ(v.serialize(), "1|0,0,3,0|1,8,3,0|2,16,3,7");

  const MetaView back = MetaView::deserialize("1|0,0,3,0|1,8,3,0|2,16,3,7");
  EXPECT_EQ(back.view_id, 1u);
  EXPECT_EQ(back.epoch, 0u);
  ASSERT_EQ(back.members.size(), 3u);
  EXPECT_EQ(back.members[2].incarnation, 7u);
}

TEST(MetaViewGoldenBytesTest, BootedFlatKernelCheckpointsLegacyBytes) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(5.0);
  auto& gsd = h.kernel.gsd(net::PartitionId{0});
  ASSERT_TRUE(gsd.joined());
  const std::string wire = gsd.view().serialize();
  // Legacy shape: no epoch token anywhere, and a clean round-trip.
  EXPECT_EQ(wire.find('@'), std::string::npos);
  const MetaView back = MetaView::deserialize(wire);
  EXPECT_EQ(back.view_id, gsd.view().view_id);
  EXPECT_EQ(back.members.size(), 2u);
}

// --- zone decomposition -------------------------------------------------------

TEST(ZoneTopologyTest, StridedAssignmentAndZoneRings) {
  const auto topo = FtParams::GroupTopology::zoned(3);
  const ZoneTopology z = ZoneTopology::from(topo, 9);
  EXPECT_EQ(z.num_zones, 3u);
  EXPECT_EQ(z.zone_of(net::PartitionId{4}), 1u);
  EXPECT_EQ(z.first_of(2), net::PartitionId{2});
  const auto members = z.zone_members(1);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], net::PartitionId{1});
  EXPECT_EQ(members[1], net::PartitionId{4});
  EXPECT_EQ(members[2], net::PartitionId{7});
  EXPECT_EQ(z.next_in_zone(net::PartitionId{4}), net::PartitionId{7});
  EXPECT_EQ(z.next_in_zone(net::PartitionId{7}), net::PartitionId{1});  // wraps
}

TEST(HierarchyTest, ZonedBootFormsSubRingsAndTopRing) {
  KernelHarness h(nine_spec(), zoned_params(3));
  h.run_s(10.0);

  // Every GSD joined its zone's sub-ring of exactly 3 members.
  for (std::uint32_t p = 0; p < 9; ++p) {
    auto& gsd = h.kernel.gsd(net::PartitionId{p});
    ASSERT_TRUE(gsd.joined()) << p;
    EXPECT_TRUE(gsd.zoned());
    EXPECT_EQ(gsd.zone(), p % 3) << p;
    EXPECT_EQ(gsd.zone_count(), 3u);
    EXPECT_EQ(gsd.view().members.size(), 3u) << p;
    EXPECT_TRUE(gsd.view().contains(net::PartitionId{p})) << p;
  }

  // Boot-time zone leaders are the first partition of each zone; they — and
  // only they — sit on the top ring, with the cluster head leading it.
  for (std::uint32_t p = 0; p < 9; ++p) {
    auto& gsd = h.kernel.gsd(net::PartitionId{p});
    EXPECT_EQ(gsd.is_leader(), p < 3) << p;
    EXPECT_EQ(gsd.is_top_member(), p < 3) << p;
    EXPECT_EQ(gsd.is_top_leader(), p == 0) << p;
  }
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{0}).top_view().members.size(), 3u);
}

TEST(HierarchyTest, FlatModeAliasesKeepMonitorsUniform) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(5.0);
  auto& head = h.kernel.gsd(net::PartitionId{0});
  EXPECT_FALSE(head.zoned());
  EXPECT_EQ(head.zone(), 0u);
  EXPECT_EQ(head.zone_count(), 1u);
  // In flat mode the single ring IS the top ring.
  EXPECT_EQ(head.is_top_leader(), head.is_leader());
  EXPECT_EQ(head.is_top_member(), head.joined());
  EXPECT_EQ(head.top_epoch(), head.meta_epoch());
}

// --- zone-local failure handling ----------------------------------------------

TEST(HierarchyTest, ZoneMemberCrashIsHandledInsideItsZone) {
  KernelHarness h(nine_spec(), zoned_quorum_params(3));
  LeaderInvariantMonitor monitor(h.kernel);
  h.run_s(10.0);

  // Partition 4 is a FOLLOWER of zone 1 ({1, 4, 7}); its server node dies.
  faults::Scenario s;
  s.crash_node(h.cluster.server_node(net::PartitionId{4}));
  h.play(s, 60.0);

  // Zone 1 removed and recovered the member (migration to the backup node);
  // its leader kept the seat.
  auto& z1_leader = h.kernel.gsd(net::PartitionId{1});
  EXPECT_TRUE(z1_leader.is_leader());
  EXPECT_EQ(z1_leader.view().members.size(), 3u);
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{4}).alive());
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{4}).joined());

  // The OTHER zones never saw view churn: their epochs are still the quorum
  // bootstrap value and their memberships are untouched.
  for (std::uint32_t p : {0u, 3u, 6u, 2u, 5u, 8u}) {
    EXPECT_EQ(h.kernel.gsd(net::PartitionId{p}).view().members.size(), 3u) << p;
    EXPECT_EQ(h.kernel.gsd(net::PartitionId{p}).meta_epoch(), 1u) << p;
  }
  // Zone 1 committed a quorum takeover of the dead member: epoch advanced.
  EXPECT_GE(z1_leader.meta_epoch(), 2u);
  EXPECT_EQ(monitor.violations(), 0u);

  // The node failure is journaled by the zone ring.
  const auto record = h.kernel.fault_log().last("GSD", FaultKind::kNodeFailure);
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->recovered);
}

TEST(HierarchyTest, ZoneLeaderCrashPromotesPrincessOntoTopRing) {
  KernelHarness h(nine_spec(), zoned_quorum_params(3));
  h.kernel.cluster().metrics().set_enabled(true);
  LeaderInvariantMonitor monitor(h.kernel);
  h.run_s(10.0);

  // Zone 1's leader (partition 1) dies. Its Princess (partition 4) must win
  // the zone regroup, promote, and DISPLACE the stale zone-1 entry on the
  // top ring — with no instant of same-zone same-epoch double leadership.
  faults::Scenario s;
  s.crash_node(h.cluster.server_node(net::PartitionId{1}));
  h.play(s, 60.0);

  auto& promoted = h.kernel.gsd(net::PartitionId{4});
  EXPECT_TRUE(promoted.is_leader());
  EXPECT_TRUE(promoted.is_top_member());
  EXPECT_GE(promoted.meta_epoch(), 2u);

  // The cluster head is untouched and the top ring regained 3 members.
  auto& head = h.kernel.gsd(net::PartitionId{0});
  EXPECT_TRUE(head.is_top_leader());
  EXPECT_EQ(head.top_view().members.size(), 3u);
  EXPECT_TRUE(head.top_view().contains(net::PartitionId{4}));
  EXPECT_FALSE(head.top_view().contains(net::PartitionId{1}));

  // The split-brain invariant held per ring throughout the double regroup.
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_EQ(monitor.ring_violations(), 0u);
  EXPECT_EQ(monitor.top_violations(), 0u);

  // The promotion was counted.
  const auto* promotions =
      h.kernel.cluster().metrics().find_counter("meta.zone.promotions");
  ASSERT_NE(promotions, nullptr);
  EXPECT_GE(promotions->value(), 1u);
}

TEST(HierarchyTest, TopLeaderCrashElectsNextZoneLeaderAsHead) {
  KernelHarness h(nine_spec(), zoned_quorum_params(3));
  LeaderInvariantMonitor monitor(h.kernel);
  h.run_s(10.0);

  // Partition 0 is both zone 0's leader and the cluster head. Killing its
  // node forces BOTH a zone-0 takeover (partition 3 promotes) and a top-ring
  // regroup (zone 1's leader, next in top join order, becomes head).
  faults::Scenario s;
  s.crash_node(h.cluster.server_node(net::PartitionId{0}));
  h.play(s, 60.0);

  auto& new_head = h.kernel.gsd(net::PartitionId{1});
  EXPECT_TRUE(new_head.is_top_leader());
  auto& z0_promoted = h.kernel.gsd(net::PartitionId{3});
  EXPECT_TRUE(z0_promoted.is_leader());
  EXPECT_TRUE(z0_promoted.is_top_member());
  EXPECT_EQ(new_head.top_view().members.size(), 3u);

  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_EQ(monitor.top_violations(), 0u);
  // The head seat was never vacant longer than one takeover.
  EXPECT_GT(monitor.samples(), 0u);
}

// --- zone fault verbs ---------------------------------------------------------

TEST(ZoneScenarioTest, CrashZoneKillsExactlyTheZoneNodes) {
  KernelHarness h(twelve_spec(), zoned_params(4));
  h.run_s(5.0);

  // 12 partitions at zone_size 4 -> 3 zones; zone 1 = {1, 4, 7, 10}.
  faults::Scenario s;
  s.crash_zone(h.kernel, 1);
  EXPECT_EQ(s.step_count(), 1u);
  h.play(s, 2.0);

  const auto& journal = h.injector.history();
  ASSERT_EQ(journal.size(), 4u);
  for (std::uint32_t p : {1u, 4u, 7u, 10u}) {
    EXPECT_FALSE(h.cluster.node(h.cluster.server_node(net::PartitionId{p})).alive())
        << p;
  }
  for (std::uint32_t p : {0u, 3u, 2u, 5u}) {
    EXPECT_TRUE(h.cluster.node(h.cluster.server_node(net::PartitionId{p})).alive())
        << p;
  }
}

TEST(ZoneScenarioTest, WholeZoneDeathLeavesOtherZonesUndisturbed) {
  KernelHarness h(twelve_spec(), zoned_quorum_params(4));
  LeaderInvariantMonitor monitor(h.kernel);
  h.run_s(10.0);

  faults::Scenario s;
  s.crash_zone(h.kernel, 1);
  h.play(s, 90.0);

  // Zones 0 and 2 never churned; the surviving top ring has a leader.
  for (std::uint32_t p : {0u, 3u, 6u, 9u, 2u, 5u, 8u, 11u}) {
    EXPECT_TRUE(h.kernel.gsd(net::PartitionId{p}).joined()) << p;
    EXPECT_EQ(h.kernel.gsd(net::PartitionId{p}).view().members.size(), 4u) << p;
  }
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{0}).is_top_leader());
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_EQ(monitor.top_violations(), 0u);
}

TEST(ZoneScenarioTest, PartitionZoneBlackholesOnlyCrossZoneLinks) {
  KernelHarness h(twelve_spec(), zoned_params(4));
  h.run_s(5.0);

  faults::Scenario s;
  s.partition_zone(h.kernel, 2);
  EXPECT_EQ(s.step_count(), 1u);
  h.play(s, 1.0);
  // 4 zone nodes x (total - 4) outside nodes x 2 directions.
  const std::size_t outside = h.cluster.node_count() - 4;
  EXPECT_EQ(h.injector.history().size(), 4 * outside * 2);

  s = faults::Scenario{};
  s.heal_zone(h.kernel, 2);
  h.play(s, 1.0);
  EXPECT_EQ(h.injector.history().size(), 2 * 4 * outside * 2);
}

// --- per-ring epoch fencing ---------------------------------------------------

TEST(TopRingFencingTest, ZoneEpochsFenceIndependently) {
  KernelHarness h(nine_spec(), zoned_quorum_params(3));
  LeaderInvariantMonitor monitor(h.kernel);
  h.run_s(10.0);

  // A takeover in zone 1 bumps ONLY zone 1's epoch; zones 0 and 2 keep the
  // bootstrap epoch — their rings were never asked to regroup, so their
  // fencing watermarks must not move either.
  faults::Scenario s;
  s.crash_node(h.cluster.server_node(net::PartitionId{1}));
  h.play(s, 60.0);

  EXPECT_GE(h.kernel.gsd(net::PartitionId{4}).meta_epoch(), 2u);
  for (std::uint32_t p : {0u, 3u, 6u, 2u, 5u, 8u}) {
    EXPECT_EQ(h.kernel.gsd(net::PartitionId{p}).meta_epoch(), 1u) << p;
  }
  EXPECT_EQ(monitor.violations(), 0u);
}

// --- churn aggregation --------------------------------------------------------

TEST(HierarchyTest, ZoneLeaderSummarizesChurnIntoAggregatedEvents) {
  KernelHarness h(nine_spec(), zoned_quorum_params(3));
  h.run_s(10.0);

  // A member loss + its recovery are two view changes in zone 1; the zone
  // leader flushes them as aggregated "meta.zone.churn" events rather than
  // per-member broadcasts to every partition.
  faults::Scenario s;
  s.crash_node(h.cluster.server_node(net::PartitionId{7}));
  h.play(s, 60.0);

  EXPECT_GE(h.kernel.gsd(net::PartitionId{1}).zone_churn_events(), 1u);
  // Zones that saw no churn emitted nothing.
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{0}).zone_churn_events(), 0u);
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{2}).zone_churn_events(), 0u);
}

}  // namespace
}  // namespace phoenix::kernel
