// Security service tests: authentication, token validation/expiry,
// role-based authorization, cipher round-trip, message interface.
#include "kernel/security/security_service.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::TestClient;

class SecurityTest : public ::testing::Test {
 protected:
  SecurityTest()
      : cluster(phoenix::testing::small_cluster_spec()),
        service(cluster, net::NodeId{0}) {
    service.start();
    service.add_user("alice", "secret-a", {"scientist"});
    service.add_user("root", "secret-r", {"admin"});
    service.grant("scientist", "job.submit", "pool/batch");
    service.grant("admin", "*", "");
  }

  cluster::Cluster cluster;
  SecurityService service;
};

TEST_F(SecurityTest, AuthenticateGoodCredentials) {
  const auto token = service.authenticate("alice", "secret-a");
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(token->user, "alice");
  EXPECT_TRUE(service.validate(*token));
}

TEST_F(SecurityTest, AuthenticateBadSecretFails) {
  EXPECT_FALSE(service.authenticate("alice", "wrong").has_value());
  EXPECT_FALSE(service.authenticate("nobody", "x").has_value());
}

TEST_F(SecurityTest, ForgedTokenRejected) {
  auto token = *service.authenticate("alice", "secret-a");
  token.user = "root";  // privilege-escalation attempt
  EXPECT_FALSE(service.validate(token));
  token = *service.authenticate("alice", "secret-a");
  token.mac ^= 1;
  EXPECT_FALSE(service.validate(token));
  token = *service.authenticate("alice", "secret-a");
  token.expires_at += 1;  // extending lifetime breaks the MAC
  EXPECT_FALSE(service.validate(token));
}

TEST_F(SecurityTest, TokenExpires) {
  service.set_token_lifetime(10 * sim::kSecond);
  const auto token = *service.authenticate("alice", "secret-a");
  EXPECT_TRUE(service.validate(token));
  cluster.engine().run_until(cluster.now() + 11 * sim::kSecond);
  EXPECT_FALSE(service.validate(token));
}

TEST_F(SecurityTest, AuthorizationRespectsAclPrefix) {
  const auto token = *service.authenticate("alice", "secret-a");
  EXPECT_TRUE(service.authorize(token, "job.submit", "pool/batch"));
  EXPECT_TRUE(service.authorize(token, "job.submit", "pool/batch-priority"));
  std::string reason;
  EXPECT_FALSE(service.authorize(token, "job.submit", "pool/gold", &reason));
  EXPECT_FALSE(reason.empty());
  EXPECT_FALSE(service.authorize(token, "node.shutdown", "pool/batch"));
}

TEST_F(SecurityTest, WildcardActionGrantsEverything) {
  const auto token = *service.authenticate("root", "secret-r");
  EXPECT_TRUE(service.authorize(token, "job.submit", "pool/gold"));
  EXPECT_TRUE(service.authorize(token, "node.shutdown", "anything"));
}

TEST_F(SecurityTest, RemovedUserLosesAccess) {
  const auto token = *service.authenticate("alice", "secret-a");
  EXPECT_TRUE(service.remove_user("alice"));
  EXPECT_FALSE(service.validate(token));
  EXPECT_FALSE(service.remove_user("alice"));
}

TEST_F(SecurityTest, MessageAuthFlow) {
  TestClient client(cluster, net::NodeId{2});
  auto auth = std::make_shared<AuthRequestMsg>();
  auth->user = "alice";
  auth->secret = "secret-a";
  auth->reply_to = client.address();
  auth->request_id = 1;
  client.send_any(service.address(), auth);
  cluster.engine().run();
  const auto* reply = client.last_of_type<AuthReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->ok);

  auto authz = std::make_shared<AuthzRequestMsg>();
  authz->token = reply->token;
  authz->action = "job.submit";
  authz->resource = "pool/batch";
  authz->reply_to = client.address();
  authz->request_id = 2;
  client.send_any(service.address(), authz);
  cluster.engine().run();
  const auto* verdict = client.last_of_type<AuthzReplyMsg>();
  ASSERT_NE(verdict, nullptr);
  EXPECT_TRUE(verdict->allowed);
}

TEST_F(SecurityTest, MessageAuthRejectsBadCredentials) {
  TestClient client(cluster, net::NodeId{2});
  auto auth = std::make_shared<AuthRequestMsg>();
  auth->user = "alice";
  auth->secret = "wrong";
  auth->reply_to = client.address();
  client.send_any(service.address(), auth);
  cluster.engine().run();
  const auto* reply = client.last_of_type<AuthReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->ok);
}

TEST(StreamCipherTest, RoundTripRestoresPlaintext) {
  const StreamCipher cipher(0xdeadbeef);
  const std::string plain = "the quick brown fox";
  const std::string scrambled = cipher.apply(plain);
  EXPECT_NE(scrambled, plain);
  EXPECT_EQ(cipher.apply(scrambled), plain);
}

TEST(StreamCipherTest, DifferentKeysDifferentOutput) {
  const StreamCipher a(1), b(2);
  const std::string plain = "payload";
  EXPECT_NE(a.apply(plain), b.apply(plain));
  // Wrong key does not decrypt.
  EXPECT_NE(b.apply(a.apply(plain)), plain);
}

TEST(StreamCipherTest, EmptyInput) {
  const StreamCipher cipher(7);
  EXPECT_EQ(cipher.apply(""), "");
}

}  // namespace
}  // namespace phoenix::kernel
