// PBS baseline tests: polling resource collection, FIFO scheduling,
// completion lag, and the no-HA failure mode the paper criticizes.
#include "pbs/pbs_server.h"

#include <gtest/gtest.h>

#include <memory>

#include "kernel_fixture.h"

namespace phoenix::pbs {
namespace {

using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

SubmitRequest req(unsigned nodes, double seconds) {
  SubmitRequest r;
  r.user = "user";
  r.nodes = nodes;
  r.duration = sim::from_seconds(seconds);
  return r;
}

class PbsTest : public ::testing::Test {
 protected:
  PbsTest() : cluster(small_cluster_spec()) {
    std::vector<net::NodeId> computes;
    for (std::uint32_t p = 0; p < cluster.spec().partitions; ++p) {
      for (net::NodeId n : cluster.compute_nodes(net::PartitionId{p})) {
        computes.push_back(n);
        moms.push_back(std::make_unique<Mom>(cluster, n));
        moms.back()->start();
      }
    }
    server = std::make_unique<PbsServer>(cluster, cluster.server_node(net::PartitionId{0}),
                                         computes, 5 * sim::kSecond);
    server->start();
  }

  void run_s(double seconds) { cluster.engine().run_for(sim::from_seconds(seconds)); }

  cluster::Cluster cluster;
  std::vector<std::unique_ptr<Mom>> moms;
  std::unique_ptr<PbsServer> server;
};

TEST_F(PbsTest, SubmitRunsAndCompletes) {
  const JobId id = server->submit(req(2, 6.0));
  run_s(2.0);
  EXPECT_EQ(server->job(id)->state, JobState::kRunning);
  run_s(20.0);  // completion discovered at the next poll
  EXPECT_EQ(server->job(id)->state, JobState::kCompleted);
  EXPECT_EQ(server->stats().completed, 1u);
}

TEST_F(PbsTest, CompletionDiscoveredOnlyByPolling) {
  const JobId id = server->submit(req(1, 3.0));
  run_s(4.0);  // job exited, but no poll yet since t=0 poll baseline
  // The completion lag must be positive and bounded by the poll interval.
  run_s(20.0);
  EXPECT_EQ(server->job(id)->state, JobState::kCompleted);
  EXPECT_GT(server->mean_completion_lag_seconds(), 0.0);
  EXPECT_LE(server->mean_completion_lag_seconds(), 5.5);
}

TEST_F(PbsTest, FifoHeadOfLineBlocks) {
  const JobId big = server->submit(req(8, 30.0));
  const JobId small = server->submit(req(8, 5.0));
  const JobId tiny = server->submit(req(1, 1.0));
  run_s(3.0);
  EXPECT_EQ(server->job(big)->state, JobState::kRunning);
  EXPECT_EQ(server->job(small)->state, JobState::kQueued);
  // No backfill in the baseline: tiny waits even though a node is free... all 8 busy.
  EXPECT_EQ(server->job(tiny)->state, JobState::kQueued);
}

TEST_F(PbsTest, PollTrafficAccumulatesContinuously) {
  cluster.fabric().reset_stats();
  run_s(60.0);
  const auto total = cluster.fabric().total_stats();
  // 8 nodes polled every 5 s for 60 s: ~96 polls + replies.
  EXPECT_GE(total.bytes_by_type.count("pbs.poll"), 1u);
  EXPECT_GE(server->stats().polls_sent, 90u);
  const auto poll_bytes = total.bytes_by_type.at("pbs.poll") +
                          total.bytes_by_type.at("pbs.poll_reply");
  EXPECT_GT(poll_bytes, 0u);
}

TEST_F(PbsTest, ServerDeathStallsEverything) {
  const JobId queued = server->submit(req(8, 5.0));
  server->submit(req(8, 5.0));
  run_s(2.0);
  server->kill();  // no supervisor, no backup: the paper's criticism
  run_s(60.0);
  // The queued second job never starts; completion of the first is never
  // even observed.
  EXPECT_EQ(server->job(queued)->state, JobState::kRunning);  // stale view
  EXPECT_EQ(server->stats().completed, 0u);
  EXPECT_EQ(server->queued_count(), 1u);
}

TEST_F(PbsTest, DeadNodePollsSilentlyDropped) {
  cluster.crash_node(net::NodeId{2});
  run_s(20.0);
  // The server keeps polling; the fabric drops the messages. Nothing
  // crashes, but the server has no failure handling either.
  EXPECT_GT(server->stats().polls_sent, 0u);
}

TEST_F(PbsTest, QueueAndRunningCounts) {
  server->submit(req(4, 30.0));
  server->submit(req(8, 30.0));
  run_s(2.0);
  EXPECT_EQ(server->running_count(), 1u);
  EXPECT_EQ(server->queued_count(), 1u);
}

}  // namespace
}  // namespace phoenix::pbs
