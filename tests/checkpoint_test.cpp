// Checkpoint service tests: save/load/delete, replication across the
// federation, cross-partition recovery fetch, serving delays.
#include "kernel/checkpoint/checkpoint_service.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : h(small_cluster_spec(), fast_ft_params()) {
    h.run_s(1.0);
  }

  CheckpointService& cs(std::uint32_t p) {
    return h.kernel.checkpoint_service(net::PartitionId{p});
  }

  KernelHarness h;
};

TEST_F(CheckpointTest, LocalSaveLoadDelete) {
  cs(0).save_local("svc", "key", "hello", /*replicate=*/false);
  ASSERT_TRUE(cs(0).load_local("svc", "key").has_value());
  EXPECT_EQ(*cs(0).load_local("svc", "key"), "hello");
  EXPECT_TRUE(cs(0).delete_local("svc", "key", false));
  EXPECT_FALSE(cs(0).load_local("svc", "key").has_value());
  EXPECT_FALSE(cs(0).delete_local("svc", "key", false));
}

TEST_F(CheckpointTest, VersionsOverwrite) {
  cs(0).save_local("svc", "k", "v1", false);
  cs(0).save_local("svc", "k", "v2", false);
  EXPECT_EQ(*cs(0).load_local("svc", "k"), "v2");
}

TEST_F(CheckpointTest, SaveReplicatesToRingSuccessor) {
  cs(0).save_local("svc", "replicated", "data");
  h.run_s(1.0);
  // Replication factor 2: partition 1 holds the replica.
  ASSERT_TRUE(cs(1).load_local("svc", "replicated").has_value());
  EXPECT_EQ(*cs(1).load_local("svc", "replicated"), "data");
}

TEST_F(CheckpointTest, DeleteReplicates) {
  cs(0).save_local("svc", "gone", "data");
  h.run_s(1.0);
  cs(0).delete_local("svc", "gone");
  h.run_s(1.0);
  EXPECT_FALSE(cs(1).load_local("svc", "gone").has_value());
}

TEST_F(CheckpointTest, StaleReplicationIgnored) {
  // A replicate with a lower version than the stored one must not win.
  cs(1).save_local("svc", "k", "newer", false);
  auto msg = std::make_shared<CheckpointReplicateMsg>();
  msg->service = "svc";
  msg->key = "k";
  msg->data = "older";
  msg->version = 0;
  TestClient client(h.cluster, net::NodeId{3});
  client.send_any(cs(1).address(), msg);
  h.run_s(1.0);
  EXPECT_EQ(*cs(1).load_local("svc", "k"), "newer");
}

TEST_F(CheckpointTest, MessageSaveAndLoad) {
  TestClient client(h.cluster, net::NodeId{2});
  auto save = std::make_shared<CheckpointSaveMsg>();
  save->service = "app";
  save->key = "state";
  save->data = "blob";
  save->reply_to = client.address();
  save->request_id = 3;
  client.send_any(cs(0).address(), save);
  h.run_s(1.0);
  const auto* saved = client.last_of_type<CheckpointSaveReplyMsg>();
  ASSERT_NE(saved, nullptr);
  EXPECT_GT(saved->version, 0u);

  auto load = std::make_shared<CheckpointLoadMsg>();
  load->service = "app";
  load->key = "state";
  load->reply_to = client.address();
  load->request_id = 4;
  client.send_any(cs(0).address(), load);
  h.run_s(5.0);
  const auto* loaded = client.last_of_type<CheckpointLoadReplyMsg>();
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(loaded->found);
  EXPECT_EQ(loaded->data, "blob");
}

TEST_F(CheckpointTest, SamePartitionLoadIsFastCrossPartitionSlow) {
  cs(0).save_local("app", "state", "blob", false);
  const auto& params = h.kernel.params();

  // Same-partition requester: disk-read delay only.
  TestClient local_client(h.cluster, net::NodeId{2});  // partition 0
  auto load = std::make_shared<CheckpointLoadMsg>();
  load->service = "app";
  load->key = "state";
  load->reply_to = local_client.address();
  const sim::SimTime t0 = h.cluster.now();
  local_client.send_any(cs(0).address(), load);
  while (local_client.of_type<CheckpointLoadReplyMsg>().empty()) {
    ASSERT_TRUE(h.cluster.engine().step());
  }
  const sim::SimTime local_latency = h.cluster.now() - t0;
  EXPECT_GE(local_latency, params.checkpoint_local_fetch);
  EXPECT_LT(local_latency, params.checkpoint_federation_fetch);

  // Cross-partition requester asking the same instance: cold-segment scan.
  TestClient remote_client(h.cluster, net::NodeId{8});  // partition 1
  auto load2 = std::make_shared<CheckpointLoadMsg>();
  load2->service = "app";
  load2->key = "state";
  load2->reply_to = remote_client.address();
  const sim::SimTime t1 = h.cluster.now();
  remote_client.send_any(cs(0).address(), load2);
  while (remote_client.of_type<CheckpointLoadReplyMsg>().empty()) {
    ASSERT_TRUE(h.cluster.engine().step());
  }
  EXPECT_GE(h.cluster.now() - t1, params.checkpoint_federation_fetch);
}

TEST_F(CheckpointTest, LoadMissFetchesFromFederation) {
  // Data saved at partition 1 WITHOUT replication; ask partition 0.
  cs(1).save_local("app", "faraway", "remote-data", false);
  TestClient client(h.cluster, net::NodeId{2});
  auto load = std::make_shared<CheckpointLoadMsg>();
  load->service = "app";
  load->key = "faraway";
  load->reply_to = client.address();
  client.send_any(cs(0).address(), load);
  h.run_s(5.0);
  const auto* reply = client.last_of_type<CheckpointLoadReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->found);
  EXPECT_EQ(reply->data, "remote-data");
}

TEST_F(CheckpointTest, LoadTrulyMissingReturnsNotFound) {
  TestClient client(h.cluster, net::NodeId{2});
  auto load = std::make_shared<CheckpointLoadMsg>();
  load->service = "app";
  load->key = "never-saved";
  load->reply_to = client.address();
  client.send_any(cs(0).address(), load);
  h.run_s(10.0);
  const auto* reply = client.last_of_type<CheckpointLoadReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->found);
}

TEST_F(CheckpointTest, ReplicaSurvivesPrimaryNodeCrash) {
  cs(0).save_local("svc", "precious", "irreplaceable");
  h.run_s(1.0);
  h.injector.crash_node(h.cluster.server_node(net::PartitionId{0}));

  // Partition 1's instance can still serve it.
  TestClient client(h.cluster, net::NodeId{8});
  auto load = std::make_shared<CheckpointLoadMsg>();
  load->service = "svc";
  load->key = "precious";
  load->reply_to = client.address();
  client.send_any(cs(1).address(), load);
  h.run_s(5.0);
  const auto* reply = client.last_of_type<CheckpointLoadReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->found);
  EXPECT_EQ(reply->data, "irreplaceable");
}

TEST(CheckpointReplicationFactorTest, HigherFactorReachesMorePartitions) {
  cluster::ClusterSpec spec = small_cluster_spec();
  spec.partitions = 4;
  KernelHarness h(spec, fast_ft_params());
  h.run_s(1.0);
  h.kernel.checkpoint_service(net::PartitionId{0}).set_replication_factor(3);
  h.kernel.checkpoint_service(net::PartitionId{0})
      .save_local("svc", "wide", "data");
  h.run_s(1.0);
  EXPECT_TRUE(h.kernel.checkpoint_service(net::PartitionId{1})
                  .load_local("svc", "wide")
                  .has_value());
  EXPECT_TRUE(h.kernel.checkpoint_service(net::PartitionId{2})
                  .load_local("svc", "wide")
                  .has_value());
  EXPECT_FALSE(h.kernel.checkpoint_service(net::PartitionId{3})
                   .load_local("svc", "wide")
                   .has_value());
}

}  // namespace
}  // namespace phoenix::kernel
