// Failure-injection matrix beyond the paper's single-fault tables: double
// faults, cascading failures, failures during recovery, and whole-network
// outages. The invariant under test is always the same: the kernel ends in
// a consistent state (ring converged, services supervised, no stuck
// diagnosis) whenever recovery is physically possible.
//
// Every injection here is authored as a declarative faults::Scenario and
// compiled onto the harness with play(); multi-phase tests that assert
// between injections use one scenario per phase.
#include <gtest/gtest.h>

#include "kernel_fixture.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;

cluster::ClusterSpec matrix_spec() {
  cluster::ClusterSpec spec;
  spec.partitions = 4;
  spec.computes_per_partition = 4;
  spec.backups_per_partition = 2;  // enough spare capacity for double faults
  return spec;
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  FaultMatrixTest() : h(matrix_spec(), fast_ft_params()) {
    h.run_s(5.0);
    h.kernel.fault_log().clear();
  }

  void expect_converged(std::size_t expected_members) {
    std::size_t leaders = 0;
    for (std::uint32_t p = 0; p < 4; ++p) {
      auto& gsd = h.kernel.gsd(net::PartitionId{p});
      if (!gsd.alive()) continue;
      EXPECT_EQ(gsd.view().members.size(), expected_members) << "partition " << p;
      if (gsd.is_leader()) ++leaders;
    }
    EXPECT_EQ(leaders, 1u);
  }

  KernelHarness h;
};

TEST_F(FaultMatrixTest, TwoServerNodesCrashSimultaneously) {
  faults::Scenario s;
  s.crash_rack({h.cluster.server_node(net::PartitionId{1}),
                h.cluster.server_node(net::PartitionId{2})});
  h.play(s, 40.0);

  expect_converged(4);
  for (std::uint32_t p : {1u, 2u}) {
    EXPECT_TRUE(h.kernel.gsd(net::PartitionId{p}).alive()) << p;
    EXPECT_TRUE(h.kernel.event_service(net::PartitionId{p}).alive()) << p;
    EXPECT_TRUE(h.kernel.bulletin(net::PartitionId{p}).alive()) << p;
  }
}

TEST_F(FaultMatrixTest, LeaderAndPrincessCrashTogether) {
  faults::Scenario s;
  s.crash_rack({h.cluster.server_node(net::PartitionId{0}),
                h.cluster.server_node(net::PartitionId{1})});
  h.play(s, 45.0);

  expect_converged(4);
  // Someone from {2,3} must have taken the lead before the recovered
  // members rejoined at the tail.
  const auto& view = h.kernel.gsd(net::PartitionId{2}).view();
  EXPECT_TRUE(view.leader()->partition == net::PartitionId{2} ||
              view.leader()->partition == net::PartitionId{3});
}

TEST_F(FaultMatrixTest, BackupDiesDuringMigration) {
  const net::NodeId server = h.cluster.server_node(net::PartitionId{1});
  const auto backups = h.cluster.backup_nodes(net::PartitionId{1});
  // Kill the first backup while detection/diagnosis is still running, so
  // the migration must pick the second backup.
  faults::Scenario s;
  s.crash_node(server).after(1 * sim::kSecond).crash_node(backups[0]);
  h.play(s, 40.0);

  auto& gsd = h.kernel.gsd(net::PartitionId{1});
  EXPECT_TRUE(gsd.alive());
  EXPECT_EQ(gsd.node_id(), backups[1]);
  expect_converged(4);
}

TEST_F(FaultMatrixTest, MigratedServerDiesAgain) {
  const net::NodeId server = h.cluster.server_node(net::PartitionId{2});
  faults::Scenario crash;
  crash.crash_node(server);
  h.play(crash, 25.0);
  const net::NodeId first_target = h.kernel.gsd(net::PartitionId{2}).node_id();
  ASSERT_NE(first_target, server);

  faults::Scenario again;
  again.crash_node(first_target);
  h.play(again, 40.0);
  auto& gsd = h.kernel.gsd(net::PartitionId{2});
  EXPECT_TRUE(gsd.alive());
  EXPECT_NE(gsd.node_id(), server);
  EXPECT_NE(gsd.node_id(), first_target);
  expect_converged(4);
}

TEST_F(FaultMatrixTest, WholeNetworkOutageSurvivedByRedundancy) {
  // Losing one of three networks cluster-wide must not trigger any node
  // or process failure handling — heartbeats keep flowing on the others.
  faults::Scenario outage;
  outage.fail_network(net::NetworkId{0});
  h.play(outage, 20.0);
  for (const auto& record : h.kernel.fault_log().records()) {
    EXPECT_EQ(record.kind, FaultKind::kNetworkFailure) << record.component;
  }
  expect_converged(4);

  faults::Scenario heal;
  heal.restore_network(net::NetworkId{0});
  h.play(heal, 10.0);
  expect_converged(4);
}

TEST_F(FaultMatrixTest, TwoNetworksDownStillNoFalseNodeFailure) {
  faults::Scenario s;
  s.fail_network(net::NetworkId{0}).fail_network(net::NetworkId{2});
  h.play(s, 20.0);
  for (const auto& record : h.kernel.fault_log().records()) {
    EXPECT_EQ(record.kind, FaultKind::kNetworkFailure) << record.component;
  }
  expect_converged(4);
}

TEST_F(FaultMatrixTest, EsDiesWhileCheckpointServiceIsAlsoDead) {
  // Without its checkpoint instance the recovering ES retries and finally
  // comes up with an empty registry — degraded but alive.
  faults::Scenario s;
  s.kill_daemon(h.kernel.checkpoint_service(net::PartitionId{1}))
      .kill_daemon(h.kernel.event_service(net::PartitionId{1}));
  h.play(s, 40.0);
  EXPECT_TRUE(h.kernel.event_service(net::PartitionId{1}).alive());
  EXPECT_TRUE(h.kernel.checkpoint_service(net::PartitionId{1}).alive());
}

TEST_F(FaultMatrixTest, RepeatedWdCrashesAlwaysRecovered) {
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{3})[1];
  faults::Scenario s;
  s.restart_storm(h.kernel.watch_daemon(victim), 4, 10 * sim::kSecond);
  h.play(s, 10.0);
  EXPECT_TRUE(h.kernel.watch_daemon(victim).alive());
  std::size_t recovered = 0;
  for (const auto& record : h.kernel.fault_log().records()) {
    if (record.component == "WD" && record.recovered) ++recovered;
  }
  EXPECT_EQ(recovered, 4u);
}

TEST_F(FaultMatrixTest, HalfTheComputeNodesDie) {
  std::vector<net::NodeId> victims;
  for (std::uint32_t p = 0; p < 4; ++p) {
    const auto computes = h.cluster.compute_nodes(net::PartitionId{p});
    for (std::size_t i = 0; i < computes.size() / 2; ++i) {
      victims.push_back(computes[i]);
    }
  }
  faults::Scenario s;
  s.crash_rack(victims);
  h.play(s, 30.0);
  std::size_t node_failures = 0;
  for (const auto& record : h.kernel.fault_log().records()) {
    if (record.component == "WD" && record.kind == FaultKind::kNodeFailure) {
      ++node_failures;
    }
  }
  EXPECT_EQ(node_failures, victims.size());
  expect_converged(4);
}

TEST_F(FaultMatrixTest, FlappingInterfaceProducesPairedEvents) {
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[0];
  faults::Scenario s;
  s.flap_link(victim, net::NetworkId{1}, 12 * sim::kSecond, 3);
  h.play(s, 6.0);
  std::size_t network_faults = 0;
  for (const auto& record : h.kernel.fault_log().records()) {
    if (record.kind == FaultKind::kNetworkFailure && record.node == victim) {
      ++network_faults;
      EXPECT_TRUE(record.recovered);
    }
  }
  EXPECT_EQ(network_faults, 3u);
}

}  // namespace
}  // namespace phoenix::kernel
