// Parallel-trials runner tests: ordering, worker bounds, exception
// propagation, and running real independent simulations on threads.
#include "sim/parallel_trials.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "faults/fault_injector.h"
#include "kernel/kernel.h"

namespace phoenix::sim {
namespace {

TEST(ParallelTrialsTest, ResultsInIndexOrder) {
  const auto results = run_parallel_trials(
      64, [](std::size_t i) { return i * i; }, 8);
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ParallelTrialsTest, ZeroTrials) {
  const auto results =
      run_parallel_trials(0, [](std::size_t) { return 1; }, 4);
  EXPECT_TRUE(results.empty());
}

TEST(ParallelTrialsTest, SingleWorkerIsSequential) {
  std::vector<std::size_t> order;
  run_parallel_trials(
      10,
      [&](std::size_t i) {
        order.push_back(i);  // safe: one worker
        return 0;
      },
      1);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelTrialsTest, AllTrialsRunExactlyOnce) {
  std::atomic<int> count{0};
  run_parallel_trials(
      100,
      [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
        return 0;
      },
      7);
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelTrialsTest, ExceptionPropagates) {
  EXPECT_THROW(run_parallel_trials(
                   16,
                   [](std::size_t i) -> int {
                     if (i == 5) throw std::runtime_error("trial 5 boom");
                     return 0;
                   },
                   4),
               std::runtime_error);
}

TEST(ParallelTrialsTest, IndependentSimulationsOnThreads) {
  // Each trial boots a full kernel, injects a fault, and measures the
  // diagnosis time. Different seeds, identical protocol: the diagnosis
  // constant must agree across every trial (and nothing may race).
  struct Trial {
    double diagnose_s = 0;
    bool recovered = false;
  };
  const auto results = run_parallel_trials(
      6,
      [](std::size_t i) {
        cluster::ClusterSpec spec;
        spec.partitions = 2;
        spec.computes_per_partition = 3;
        spec.backups_per_partition = 1;
        spec.seed = 100 + i;
        cluster::Cluster cluster(spec);
        kernel::FtParams params;
        params.heartbeat_interval = 2 * kSecond;
        kernel::PhoenixKernel kernel(cluster, params);
        kernel.boot();
        cluster.engine().run_for(5 * kSecond);
        faults::FaultInjector injector(cluster);
        injector.kill_daemon(kernel.watch_daemon(
            cluster.compute_nodes(net::PartitionId{0})[0]));
        cluster.engine().run_for(10 * kSecond);
        const auto record = kernel.fault_log().last("WD");
        Trial t;
        if (record) {
          t.diagnose_s = to_seconds(record->diagnosed_at - record->detected_at);
          t.recovered = record->recovered;
        }
        return t;
      },
      3);

  for (const auto& t : results) {
    EXPECT_TRUE(t.recovered);
    EXPECT_NEAR(t.diagnose_s, 0.28, 0.05);
  }
}

}  // namespace
}  // namespace phoenix::sim
