// Resilient-RPC substrate tests (DESIGN.md §9): at-most-once dedup under
// reply loss, the exponential backoff schedule, deadline-vs-budget status
// semantics, and federation failover re-routing.
#include "net/rpc.h"

#include <gtest/gtest.h>

#include "kernel/api.h"
#include "kernel_fixture.h"

namespace phoenix::kernel {
namespace {

using net::CallOptions;
using net::ReplayCache;
using net::Result;
using net::RetryPolicy;
using net::Status;
using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

// --- substrate units --------------------------------------------------------

struct FakeReply final : net::Message {
  PHOENIX_MESSAGE_TYPE("test.reply")
  std::size_t wire_size() const noexcept override { return net::kWireHeaderBytes; }
};

TEST(RetryPolicyTest, BackoffDoublesAndCaps) {
  RetryPolicy p;  // 2s initial, x2, 8s cap
  EXPECT_EQ(p.rto_for(1), 2 * sim::kSecond);
  EXPECT_EQ(p.rto_for(2), 4 * sim::kSecond);
  EXPECT_EQ(p.rto_for(3), 8 * sim::kSecond);
  EXPECT_EQ(p.rto_for(4), 8 * sim::kSecond);  // capped
}

TEST(RetryPolicyTest, JitterStaysWithinFraction) {
  RetryPolicy p;
  p.jitter_frac = 0.25;
  sim::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const sim::SimTime t = p.jittered(4 * sim::kSecond, rng);
    EXPECT_GE(t, 3 * sim::kSecond);
    EXPECT_LE(t, 5 * sim::kSecond);
  }
}

TEST(ReplayCacheTest, TriStateAdmission) {
  ReplayCache cache;
  const net::Address client{net::NodeId{1}, net::PortId{30}};
  const net::MessageTypeId type = net::intern_message_type("test.op");

  EXPECT_EQ(cache.begin(client, type, 7), ReplayCache::Admit::kNew);
  // Duplicate while executing: suppressed.
  EXPECT_EQ(cache.begin(client, type, 7), ReplayCache::Admit::kInFlight);
  EXPECT_EQ(cache.duplicates_suppressed(), 1u);

  auto reply = std::make_shared<FakeReply>();
  cache.complete(client, type, 7, reply);
  std::shared_ptr<const net::Message> replayed;
  EXPECT_EQ(cache.begin(client, type, 7, &replayed), ReplayCache::Admit::kReplay);
  EXPECT_EQ(replayed.get(), reply.get());
  EXPECT_EQ(cache.replays_served(), 1u);

  // Different request id, same client: fresh.
  EXPECT_EQ(cache.begin(client, type, 8), ReplayCache::Admit::kNew);
  // Id 0 is untracked.
  EXPECT_EQ(cache.begin(client, type, 0), ReplayCache::Admit::kNew);
  EXPECT_EQ(cache.begin(client, type, 0), ReplayCache::Admit::kNew);
}

TEST(ReplayCacheTest, FifoEvictionBoundsTheCache) {
  ReplayCache cache(4);
  const net::Address client{net::NodeId{1}, net::PortId{30}};
  const net::MessageTypeId type = net::intern_message_type("test.op");
  for (std::uint64_t id = 1; id <= 6; ++id) {
    cache.begin(client, type, id);
    cache.complete(client, type, id, std::make_shared<FakeReply>());
  }
  EXPECT_EQ(cache.size(), 4u);
  // Oldest entries were evicted: a retry of id 1 re-executes.
  EXPECT_EQ(cache.begin(client, type, 1), ReplayCache::Admit::kNew);
  // Newest still replays.
  std::shared_ptr<const net::Message> replayed;
  EXPECT_EQ(cache.begin(client, type, 6, &replayed), ReplayCache::Admit::kReplay);
  EXPECT_NE(replayed, nullptr);
}

// --- kernel integration -----------------------------------------------------

class RpcResilienceTest : public ::testing::Test {
 protected:
  RpcResilienceTest()
      : h(small_cluster_spec(), fast_ft_params()),
        api(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0], h.kernel) {
    h.run_s(2.0);
  }

  KernelHarness h;
  KernelApi api;
};

TEST_F(RpcResilienceTest, ConfigSetDedupUnderReplyLoss) {
  const std::uint64_t version_before = h.kernel.config().version();

  // Drop exactly the reply; the request reaches the service and applies.
  h.injector.drop_next_to(api.address(), 1);
  Result<std::uint64_t> r;
  api.config_set("rpc/key", "value", [&](Result<std::uint64_t> got) { r = got; });
  h.run_s(10.0);

  // The retry was answered from the replay cache: exactly ONE state change.
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.value, version_before + 1);
  EXPECT_EQ(h.kernel.config().version(), version_before + 1);
  EXPECT_EQ(h.kernel.config().replay_cache().replays_served(), 1u);
  EXPECT_EQ(api.retries_sent(), 1u);
  EXPECT_EQ(api.pending_calls(), 0u);
}

TEST_F(RpcResilienceTest, CheckpointSaveDedupUnderReplyLoss) {
  h.injector.drop_next_to(api.address(), 1);
  Result<std::uint64_t> first;
  api.checkpoint_save("rpcsvc", "state", "payload",
                      [&](Result<std::uint64_t> r) { first = r; });
  h.run_s(10.0);
  ASSERT_EQ(first.status, Status::kOk);

  // The retried save replayed its original version instead of writing twice:
  // the next save gets version + 1, not version + 2.
  Result<std::uint64_t> second;
  api.checkpoint_save("rpcsvc", "other", "payload2",
                      [&](Result<std::uint64_t> r) { second = r; });
  h.run_s(5.0);
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_EQ(second.value, first.value + 1);

  const auto& cs = h.kernel.checkpoint_service(net::PartitionId{1});
  EXPECT_EQ(cs.replay_cache().replays_served(), 1u);
  EXPECT_EQ(api.retries_sent(), 1u);
}

TEST_F(RpcResilienceTest, BackoffScheduleMatchesPolicy) {
  h.cluster.tracer().set_capacity(65536);
  h.cluster.tracer().set_enabled(true);
  api.retry_policy().jitter_frac = 0.0;  // deterministic schedule

  // Dead daemon on a live node: every attempt transmits, nothing answers.
  h.injector.kill_daemon(h.kernel.config());
  const sim::SimTime t0 = h.cluster.now();
  Status status = Status::kOk;
  sim::SimTime done_at = 0;
  api.config_get("any",
                 [&](Result<std::optional<std::string>> r) {
                   status = r.status;
                   done_at = h.cluster.now();
                 },
                 CallOptions{.deadline = 60 * sim::kSecond, .max_retries = 3});
  h.run_s(30.0);

  // Attempts at t0, +2s, +6s, +14s; the budget dies at +22s.
  EXPECT_EQ(status, Status::kRetriesExhausted);
  EXPECT_EQ(api.retries_sent(), 3u);
  EXPECT_EQ(api.exhausted_calls(), 1u);
  EXPECT_EQ(done_at, t0 + 22 * sim::kSecond);

  std::vector<sim::SimTime> retry_times;
  for (const auto& e : h.cluster.tracer().filtered("api")) {
    if (e.message.rfind("retry ", 0) == 0) retry_times.push_back(e.at);
  }
  ASSERT_EQ(retry_times.size(), 3u);
  EXPECT_EQ(retry_times[0], t0 + 2 * sim::kSecond);
  EXPECT_EQ(retry_times[1], t0 + 6 * sim::kSecond);
  EXPECT_EQ(retry_times[2], t0 + 14 * sim::kSecond);
}

TEST_F(RpcResilienceTest, DeadlineExpiresWithTimeoutNotExhausted) {
  h.injector.kill_daemon(h.kernel.config());
  Status status = Status::kOk;
  api.config_get("any",
                 [&](Result<std::optional<std::string>> r) { status = r.status; },
                 CallOptions{.deadline = 3 * sim::kSecond, .max_retries = 10});
  h.run_s(10.0);

  // The budget allowed 10 retries, but the deadline came first — and at
  // least one attempt was on the wire, so this is kTimeout, not
  // kUnreachable.
  EXPECT_EQ(status, Status::kTimeout);
  EXPECT_EQ(api.timed_out_calls(), 1u);
  EXPECT_EQ(api.exhausted_calls(), 0u);
}

TEST_F(RpcResilienceTest, QueryDuringFailoverReroutesToFederationPeer) {
  h.run_s(3.0);  // detectors fill both bulletin instances

  // The api's home partition loses its server node (bulletin instance dead,
  // recovery not yet run). The call must re-route to the peer instance and
  // still complete.
  h.injector.crash_node(h.cluster.server_node(net::PartitionId{1}));
  Result<BulletinSnapshot> snap;
  api.query(BulletinTable::kNodes, /*cluster_scope=*/true, {},
            [&](Result<BulletinSnapshot> r) { snap = std::move(r); });
  h.run_s(2.0);

  EXPECT_EQ(snap.status, Status::kOk);
  EXPECT_GE(api.reroutes(), 1u);
  EXPECT_FALSE(snap.value.nodes.empty());
}

TEST_F(RpcResilienceTest, RetrySucceedsAfterServiceRecovery) {
  // Kill the home checkpoint instance's node right before the call. The
  // attempt re-resolves through the directory, sees the dead home, and
  // rotates to a live federation peer — a mutating call, not just a query,
  // completes across the failover.
  h.run_s(2.0);
  h.injector.crash_node(h.cluster.server_node(net::PartitionId{1}));
  Result<std::uint64_t> r;
  api.checkpoint_save("failover", "key", "data",
                      [&](Result<std::uint64_t> got) { r = got; },
                      CallOptions{.deadline = 30 * sim::kSecond});
  h.run_s(30.0);

  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_GE(api.reroutes(), 1u);
  EXPECT_EQ(api.pending_calls(), 0u);
}

}  // namespace
}  // namespace phoenix::kernel
