// Parallel process management tests: probes, remote spawn/kill/cleanup,
// exit notification, service restarts, parallel commands with tree fan-out.
#include "kernel/ppm/process_manager.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class PpmTest : public ::testing::Test {
 protected:
  PpmTest() : h(small_cluster_spec(), fast_ft_params()), client(h.cluster, net::NodeId{3}) {}

  net::Address ppm_addr(std::uint32_t node) {
    return {net::NodeId{node}, port_of(ServiceKind::kProcessManager)};
  }

  KernelHarness h;
  TestClient client;
};

TEST_F(PpmTest, ProbeAnswersOnSameNetwork) {
  auto probe = std::make_shared<ProbeMsg>();
  probe->reply_to = client.address();
  probe->probe_id = 77;
  client.send(ppm_addr(2), net::NetworkId{1}, probe);
  h.cluster.engine().run_for(sim::kSecond);
  const auto* reply = client.last_of_type<ProbeReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->probe_id, 77u);
  EXPECT_EQ(reply->node.value, 2u);
}

TEST_F(PpmTest, DeadNodeDoesNotAnswerProbe) {
  h.injector.crash_node(net::NodeId{2});
  auto probe = std::make_shared<ProbeMsg>();
  probe->reply_to = client.address();
  client.send_any(ppm_addr(2), probe);
  h.run_s(2.0);
  EXPECT_EQ(client.of_type<ProbeReplyMsg>().size(), 0u);
}

TEST_F(PpmTest, SpawnCreatesProcessAndReplies) {
  auto spawn = std::make_shared<SpawnMsg>();
  spawn->spec = ProcessSpec{"myjob", "alice", 2.0, 5 * sim::kSecond, 1 << 20};
  spawn->reply_to = client.address();
  spawn->request_id = 5;
  client.send_any(ppm_addr(4), spawn);
  h.run_s(1.0);

  const auto* reply = client.last_of_type<SpawnReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->ok);
  const auto* info = h.cluster.node(net::NodeId{4}).find_process(reply->pid);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name, "myjob");
  EXPECT_EQ(info->owner, "alice");
  EXPECT_EQ(info->state, cluster::ProcessState::kRunning);
}

TEST_F(PpmTest, ProcessExitsAfterDurationWithNotify) {
  auto spawn = std::make_shared<SpawnMsg>();
  spawn->spec = ProcessSpec{"shortjob", "alice", 1.0, 3 * sim::kSecond, 1024};
  spawn->reply_to = client.address();
  spawn->exit_notify = client.address();
  client.send_any(ppm_addr(4), spawn);
  h.run_s(1.0);
  const auto* reply = client.last_of_type<SpawnReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(client.of_type<ExitNotifyMsg>().size(), 0u);

  h.run_s(3.0);
  const auto* exit = client.last_of_type<ExitNotifyMsg>();
  ASSERT_NE(exit, nullptr);
  EXPECT_EQ(exit->pid, reply->pid);
  EXPECT_EQ(exit->name, "shortjob");
  const auto* info = h.cluster.node(net::NodeId{4}).find_process(reply->pid);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->state, cluster::ProcessState::kExited);
}

TEST_F(PpmTest, KillTerminatesProcess) {
  auto spawn = std::make_shared<SpawnMsg>();
  spawn->spec = ProcessSpec{"victim", "alice", 1.0, 0 /*runs forever*/, 1024};
  spawn->reply_to = client.address();
  client.send_any(ppm_addr(4), spawn);
  h.run_s(1.0);
  const auto pid = client.last_of_type<SpawnReplyMsg>()->pid;

  auto kill = std::make_shared<KillMsg>();
  kill->pid = pid;
  kill->reply_to = client.address();
  kill->request_id = 9;
  client.send_any(ppm_addr(4), kill);
  h.run_s(1.0);
  const auto* reply = client.last_of_type<KillReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(h.cluster.node(net::NodeId{4}).find_process(pid)->state,
            cluster::ProcessState::kKilled);
}

TEST_F(PpmTest, CleanupReapsTerminatedEntries) {
  auto spawn = std::make_shared<SpawnMsg>();
  spawn->spec = ProcessSpec{"fleeting", "alice", 1.0, 1 * sim::kSecond, 1024};
  spawn->reply_to = client.address();
  client.send_any(ppm_addr(4), spawn);
  h.run_s(3.0);

  auto cleanup = std::make_shared<CleanupMsg>();
  cleanup->reply_to = client.address();
  client.send_any(ppm_addr(4), cleanup);
  h.run_s(1.0);
  const auto* reply = client.last_of_type<CleanupReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_GE(reply->reaped, 1u);
}

TEST_F(PpmTest, RestartServiceBringsDaemonBack) {
  auto& wd = h.kernel.watch_daemon(net::NodeId{4});
  wd.kill();
  ASSERT_FALSE(wd.alive());

  auto restart = std::make_shared<StartServiceMsg>();
  restart->kind = ServiceKind::kWatchDaemon;
  restart->create = false;
  restart->reply_to = client.address();
  restart->request_id = 11;
  client.send_any(ppm_addr(4), restart);
  h.run_s(1.0);
  const auto* reply = client.last_of_type<StartServiceReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->ok);
  EXPECT_TRUE(wd.alive());
}

TEST_F(PpmTest, RestartUnknownServiceReportsFailure) {
  auto restart = std::make_shared<StartServiceMsg>();
  restart->kind = ServiceKind::kGroupService;  // no GSD instance on node 4
  restart->create = false;
  restart->reply_to = client.address();
  client.send_any(ppm_addr(4), restart);
  h.run_s(1.0);
  const auto* reply = client.last_of_type<StartServiceReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->ok);
}

TEST_F(PpmTest, ParallelCommandCoversAllNodes) {
  auto cmd = std::make_shared<ParallelCmdMsg>();
  cmd->command = "uptime";
  for (const auto& node : h.cluster.nodes()) cmd->nodes.push_back(node.id());
  cmd->fanout = 3;
  cmd->reply_to = client.address();
  cmd->request_id = 21;
  client.send_any(ppm_addr(0), cmd);
  h.run_s(10.0);
  const auto* reply = client.last_of_type<ParallelCmdReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->succeeded, h.cluster.node_count());
  EXPECT_EQ(reply->failed, 0u);
}

TEST_F(PpmTest, ParallelCommandReportsDeadNodesAsFailed) {
  h.injector.crash_node(net::NodeId{4});
  auto cmd = std::make_shared<ParallelCmdMsg>();
  cmd->command = "uptime";
  for (const auto& node : h.cluster.nodes()) cmd->nodes.push_back(node.id());
  cmd->fanout = 4;
  cmd->reply_to = client.address();
  client.send_any(ppm_addr(0), cmd);
  h.run_s(15.0);
  const auto* reply = client.last_of_type<ParallelCmdReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->succeeded + reply->failed, h.cluster.node_count());
  EXPECT_GE(reply->failed, 1u);
  EXPECT_LT(reply->succeeded, h.cluster.node_count());
}

TEST_F(PpmTest, ParallelCommandSingleNode) {
  auto cmd = std::make_shared<ParallelCmdMsg>();
  cmd->command = "true";
  cmd->nodes = {net::NodeId{0}};
  cmd->reply_to = client.address();
  client.send_any(ppm_addr(0), cmd);
  h.run_s(5.0);
  const auto* reply = client.last_of_type<ParallelCmdReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->succeeded, 1u);
}

TEST_F(PpmTest, SpawnLocalDirect) {
  auto& ppm = h.kernel.ppm(net::NodeId{2});
  const auto pid = ppm.spawn_local(ProcessSpec{"direct", "bob", 0.5, 0, 0});
  EXPECT_NE(h.cluster.node(net::NodeId{2}).find_process(pid), nullptr);
}

}  // namespace
}  // namespace phoenix::kernel
