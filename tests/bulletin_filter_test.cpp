// Bulletin query-filter pushdown and staleness-sweep tests.
#include <gtest/gtest.h>

#include "kernel/bulletin/data_bulletin.h"
#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class BulletinFilterTest : public ::testing::Test {
 protected:
  BulletinFilterTest() : h(small_cluster_spec(), fast_ft_params()) {
    h.run_s(3.0);  // detectors fill both partitions
  }

  const DbQueryReplyMsg* query(TestClient& client, BulletinFilter filter,
                               BulletinTable table = BulletinTable::kBoth) {
    auto q = std::make_shared<DbQueryMsg>();
    q->query_id = 77;
    q->table = table;
    q->cluster_scope = true;
    q->filter = std::move(filter);
    q->reply_to = client.address();
    client.send_any(h.kernel.bulletin(net::PartitionId{0}).address(), q);
    h.run_s(2.0);
    return client.last_of_type<DbQueryReplyMsg>();
  }

  KernelHarness h;
};

TEST_F(BulletinFilterTest, PartitionFilterRestrictsRows) {
  TestClient client(h.cluster, net::NodeId{2});
  BulletinFilter filter;
  filter.has_partition = true;
  filter.partition = net::PartitionId{1};
  const auto* reply = query(client, filter, BulletinTable::kNodes);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->node_rows.size(), 6u);
  for (const auto& row : reply->node_rows) {
    EXPECT_EQ(row.partition.value, 1u);
  }
}

TEST_F(BulletinFilterTest, CpuThresholdFilter) {
  // Pin two nodes hot, the rest cold.
  for (const auto& node : h.cluster.nodes()) {
    h.cluster.node(node.id()).resources().cpu_pct =
        (node.id().value == 3 || node.id().value == 9) ? 95.0 : 5.0;
  }
  for (const auto& node : h.cluster.nodes()) {
    h.kernel.detector(node.id()).sample_now();
  }
  h.run_s(1.0);

  TestClient client(h.cluster, net::NodeId{2});
  BulletinFilter filter;
  filter.min_cpu_pct = 80.0;
  const auto* reply = query(client, filter, BulletinTable::kNodes);
  ASSERT_NE(reply, nullptr);
  ASSERT_EQ(reply->node_rows.size(), 2u);
  for (const auto& row : reply->node_rows) {
    EXPECT_GE(row.usage.cpu_pct, 80.0);
  }
}

TEST_F(BulletinFilterTest, OwnerFilterOnApps) {
  h.kernel.ppm(net::NodeId{3}).spawn_local(
      ProcessSpec{"a-job", "alice", 1.0, 60 * sim::kSecond, 0});
  h.kernel.ppm(net::NodeId{4}).spawn_local(
      ProcessSpec{"b-job", "bob", 1.0, 60 * sim::kSecond, 0});
  h.run_s(2.0);

  TestClient client(h.cluster, net::NodeId{2});
  BulletinFilter filter;
  filter.set_owner("alice");
  const auto* reply = query(client, filter, BulletinTable::kApps);
  ASSERT_NE(reply, nullptr);
  ASSERT_EQ(reply->app_rows.size(), 1u);
  EXPECT_EQ(reply->app_rows[0].owner(), "alice");
  EXPECT_EQ(reply->app_rows[0].name(), "a-job");
}

TEST_F(BulletinFilterTest, FilterPushdownReducesReplyBytes) {
  // A filtered cluster query must move fewer bytes than an unfiltered one.
  TestClient client(h.cluster, net::NodeId{2});
  h.cluster.fabric().reset_stats();
  query(client, BulletinFilter{});  // unfiltered
  const auto unfiltered =
      h.cluster.fabric().total_stats().bytes_by_type.at("db.query_reply");

  h.cluster.fabric().reset_stats();
  BulletinFilter narrow;
  narrow.min_cpu_pct = 1000.0;  // matches nothing
  query(client, narrow, BulletinTable::kNodes);
  const auto filtered =
      h.cluster.fabric().total_stats().bytes_by_type.at("db.query_reply");
  EXPECT_LT(filtered, unfiltered / 2);
}

TEST_F(BulletinFilterTest, StaleRowsMarkedDeadThenEvicted) {
  auto& db = h.kernel.bulletin(net::PartitionId{0});
  db.set_staleness_horizon(3 * sim::kSecond);
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[0];
  h.injector.crash_node(victim);  // its detector stops reporting

  h.run_s(4.5);  // > horizon: marked not-alive
  bool found = false;
  for (const auto& row : db.node_rows()) {
    if (row.node == victim) {
      found = true;
      EXPECT_FALSE(row.alive);
    }
  }
  EXPECT_TRUE(found);

  h.run_s(4.0);  // > 2x horizon: evicted
  for (const auto& row : db.node_rows()) {
    EXPECT_NE(row.node, victim);
  }
}

TEST_F(BulletinFilterTest, LiveRowsSurviveSweep) {
  auto& db = h.kernel.bulletin(net::PartitionId{0});
  db.set_staleness_horizon(3 * sim::kSecond);
  h.run_s(20.0);
  EXPECT_EQ(db.node_row_count(), 6u);  // detectors keep everything fresh
  for (const auto& row : db.node_rows()) {
    EXPECT_TRUE(row.alive);
  }
}

TEST_F(BulletinFilterTest, AliveOnlyFilter) {
  auto& db = h.kernel.bulletin(net::PartitionId{0});
  db.set_staleness_horizon(3 * sim::kSecond);
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[1];
  h.injector.crash_node(victim);
  h.run_s(4.5);

  TestClient client(h.cluster, net::NodeId{2});
  BulletinFilter filter;
  filter.alive_only = true;
  filter.has_partition = true;
  filter.partition = net::PartitionId{0};
  const auto* reply = query(client, filter, BulletinTable::kNodes);
  ASSERT_NE(reply, nullptr);
  for (const auto& row : reply->node_rows) {
    EXPECT_NE(row.node, victim);
    EXPECT_TRUE(row.alive);
  }
}

}  // namespace
}  // namespace phoenix::kernel
