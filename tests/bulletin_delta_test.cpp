// Delta-reporting protocol tests (DESIGN.md §8): the bulletin state built
// from the detectors' delta stream must be byte-for-byte the state built
// from full every-sample snapshots, under randomized app churn and across
// detector restarts; broken sequence chains must drop the delta and heal at
// the next resync.
#include <algorithm>
#include <gtest/gtest.h>

#include "kernel/bulletin/data_bulletin.h"
#include "kernel_fixture.h"
#include "test_client.h"
#include "workload/resource_model.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

kernel::FtParams snapshot_only_params() {
  auto p = fast_ft_params();
  p.detector_delta_reports = false;
  return p;
}

bool node_less(const NodeRecord& a, const NodeRecord& b) {
  return a.node.value < b.node.value;
}
bool app_less(const AppRecord& a, const AppRecord& b) {
  return a.node.value != b.node.value ? a.node.value < b.node.value
                                      : a.pid < b.pid;
}

/// Sorted-row comparison of one partition's tables across two harnesses
/// (snapshot rebuilding and delta maintenance produce different row ORDER,
/// but every field of every row must match).
void expect_tables_equal(DataBulletin& delta_db, DataBulletin& full_db) {
  auto dn = delta_db.node_rows();
  auto fn = full_db.node_rows();
  std::sort(dn.begin(), dn.end(), node_less);
  std::sort(fn.begin(), fn.end(), node_less);
  EXPECT_EQ(dn, fn);

  auto da = delta_db.app_rows();
  auto fa = full_db.app_rows();
  std::sort(da.begin(), da.end(), app_less);
  std::sort(fa.begin(), fa.end(), app_less);
  EXPECT_EQ(da, fa);
}

/// Two identically-seeded kernels, one on the delta protocol and one
/// shipping full snapshots every sample. Both simulations are in RNG
/// lockstep (the protocol choice draws no randomness), so at any instant
/// their bulletins must hold identical state.
struct TwinHarness {
  TwinHarness()
      : delta_h(small_cluster_spec(), fast_ft_params()),
        full_h(small_cluster_spec(), snapshot_only_params()),
        delta_model(delta_h.cluster, churn_params()),
        full_model(full_h.cluster, churn_params()) {
    delta_model.start();
    full_model.start();
  }

  static workload::ResourceModelParams churn_params() {
    workload::ResourceModelParams p;
    p.update_interval = 1 * sim::kSecond;
    p.churn_apps_per_node = 3;
    p.churn_exit_probability = 0.25;  // aggressive churn: many starts/exits
    return p;
  }

  void run_both_s(double seconds) {
    delta_h.run_s(seconds);
    full_h.run_s(seconds);
  }

  void expect_equal_everywhere() {
    for (std::uint32_t p = 0; p < 2; ++p) {
      SCOPED_TRACE("partition " + std::to_string(p));
      expect_tables_equal(delta_h.kernel.bulletin(net::PartitionId{p}),
                          full_h.kernel.bulletin(net::PartitionId{p}));
    }
  }

  KernelHarness delta_h;
  KernelHarness full_h;
  workload::ResourceModel delta_model;
  workload::ResourceModel full_model;
};

TEST(BulletinDeltaTest, DeltaStreamMatchesFullSnapshotsUnderChurn) {
  TwinHarness twins;
  // 40 s at a 1 s sampling interval: ~40 samples/node = several full
  // resync cycles (every 12th sample) with heavy churn in between.
  twins.run_both_s(40.0);
  twins.expect_equal_everywhere();

  // The delta harness really used the delta path, losslessly.
  const auto& det = twins.delta_h.kernel.detector(net::NodeId{3});
  EXPECT_GT(det.delta_reports_sent(), det.full_reports_sent());
  for (std::uint32_t p = 0; p < 2; ++p) {
    EXPECT_EQ(twins.delta_h.kernel.bulletin(net::PartitionId{p}).deltas_dropped(), 0u);
  }
  // And the snapshot harness never produced a delta.
  EXPECT_EQ(twins.full_h.kernel.detector(net::NodeId{3}).delta_reports_sent(), 0u);
}

TEST(BulletinDeltaTest, EquivalenceHoldsAcrossDetectorRestart) {
  TwinHarness twins;
  twins.run_both_s(10.0);

  // Bounce the same compute node's detector in both worlds. On restart the
  // delta-protocol detector must re-anchor with a full snapshot rather than
  // continuing a chain the bulletin may have diverged from.
  const net::NodeId victim{4};
  twins.delta_h.kernel.detector(victim).stop();
  twins.full_h.kernel.detector(victim).stop();
  twins.run_both_s(5.0);
  twins.delta_h.kernel.detector(victim).start();
  twins.full_h.kernel.detector(victim).start();

  twins.run_both_s(20.0);
  twins.expect_equal_everywhere();
  for (std::uint32_t p = 0; p < 2; ++p) {
    EXPECT_EQ(twins.delta_h.kernel.bulletin(net::PartitionId{p}).deltas_dropped(), 0u);
  }
}

TEST(BulletinDeltaTest, BrokenChainDropsDeltaUntilResync) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  auto& db = h.kernel.bulletin(net::PartitionId{0});

  NodeRecord rec;
  rec.node = net::NodeId{99};
  rec.partition = net::PartitionId{0};
  rec.usage.cpu_pct = 10.0;
  AppRecord app{.node = rec.node,
                .pid = 7,
                .name_id = net::intern_symbol("job-a"),
                .owner_id = net::intern_symbol("alice")};
  db.report_local(rec, {app}, /*seq=*/5);

  // Stale base sequence: rejected, table untouched.
  DbDeltaMsg stale;
  stale.node = rec.node;
  stale.prev_seq = 3;
  stale.seq = 4;
  stale.has_usage = true;
  stale.usage.cpu_pct = 99.0;
  EXPECT_FALSE(db.apply_delta(stale));
  EXPECT_EQ(db.deltas_dropped(), 1u);
  EXPECT_DOUBLE_EQ(db.node_rows()[0].usage.cpu_pct, 10.0);

  // Unknown node: also a drop.
  DbDeltaMsg unknown;
  unknown.node = net::NodeId{12345};
  unknown.prev_seq = 0;
  unknown.seq = 1;
  EXPECT_FALSE(db.apply_delta(unknown));
  EXPECT_EQ(db.deltas_dropped(), 2u);

  // Chained delta: applied — gauges move, one app exits, one starts.
  DbDeltaMsg good;
  good.node = rec.node;
  good.prev_seq = 5;
  good.seq = 6;
  good.has_usage = true;
  good.usage.cpu_pct = 55.0;
  good.sampled_at = 77;
  good.exited.push_back(7);
  good.started.push_back(AppRecord{.node = rec.node,
                                   .pid = 8,
                                   .name_id = net::intern_symbol("job-b"),
                                   .owner_id = net::intern_symbol("bob")});
  EXPECT_TRUE(db.apply_delta(good));
  const auto nodes = db.node_rows();
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_DOUBLE_EQ(nodes[0].usage.cpu_pct, 55.0);
  EXPECT_EQ(nodes[0].updated_at, 77);
  const auto apps = db.app_rows();
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0].pid, 8u);
  EXPECT_EQ(apps[0].owner(), "bob");
  EXPECT_EQ(db.app_row_count(), 1u);

  // A later snapshot resets the chain to any sequence.
  db.report_local(rec, {}, /*seq=*/40);
  DbDeltaMsg resynced;
  resynced.node = rec.node;
  resynced.prev_seq = 40;
  resynced.seq = 41;
  EXPECT_TRUE(db.apply_delta(resynced));
}

TEST(BulletinDeltaTest, EvictionDropsAppRowsWithTheNode) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(3.0);
  auto& db = h.kernel.bulletin(net::PartitionId{0});
  db.set_staleness_horizon(3 * sim::kSecond);

  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[0];
  h.kernel.ppm(victim).spawn_local(
      ProcessSpec{"doomed", "alice", 1.0, 600 * sim::kSecond, 0});
  h.run_s(2.0);
  ASSERT_GE(db.app_row_count(), 1u);

  h.injector.crash_node(victim);
  h.run_s(8.0);  // past 2x horizon: node row evicted, app rows with it
  for (const auto& row : db.node_rows()) EXPECT_NE(row.node, victim);
  for (const auto& app : db.app_rows()) EXPECT_NE(app.node, victim);
  EXPECT_EQ(db.app_row_count(), db.app_rows().size());
}

TEST(BulletinDeltaTest, ClusterQueryWithDeadPeerAnswersWithinTimeout) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(3.0);
  auto& db = h.kernel.bulletin(net::PartitionId{0});
  const sim::SimTime timeout = 200 * sim::kMillisecond;
  db.set_query_timeout(timeout);
  h.kernel.bulletin(net::PartitionId{1}).kill();

  TestClient client(h.cluster, net::NodeId{2});
  auto q = std::make_shared<DbQueryMsg>();
  q->query_id = 9;
  q->cluster_scope = true;
  q->reply_to = client.address();
  client.send_any(db.address(), q);

  const sim::SimTime sent_at = h.cluster.now();
  while (client.last_of_type<DbQueryReplyMsg>() == nullptr) {
    ASSERT_TRUE(h.cluster.engine().step()) << "simulation ran dry, no reply";
  }
  const auto* reply = client.last_of_type<DbQueryReplyMsg>();
  // The dead peer never answers; the access point must reply with the
  // timeout, not hang on the missing partition.
  EXPECT_LE(h.cluster.now() - sent_at, timeout + 50 * sim::kMillisecond);
  EXPECT_EQ(reply->partitions_included, 1u);
  EXPECT_EQ(reply->node_rows.size(), 6u);
}

}  // namespace
}  // namespace phoenix::kernel
