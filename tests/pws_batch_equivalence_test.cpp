// Batched-vs-sequential equivalence: the same tenant trace pushed through
// the SubmissionGateway (batch RPCs, coalesced checkpoints, incremental
// passes) must land every job in the same final state with the same
// per-user usage as one-by-one direct submission. Also covers the walltime
// expiry heap: exceeded jobs are killed, and a requeued job's limit is
// measured from its relaunch (stale heap entries are revalidated away).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel_fixture.h"
#include "pws/gateway.h"
#include "pws/pws.h"
#include "workload/tenant_load.h"

namespace phoenix::pws {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

PwsConfig one_pool_config(const cluster::Cluster& cluster) {
  PwsConfig config;
  PoolConfig pool;
  pool.name = "batch";
  pool.policy = SchedPolicy::kFifo;
  for (std::uint32_t p = 0; p < cluster.spec().partitions; ++p) {
    for (net::NodeId n : cluster.compute_nodes(net::PartitionId{p})) {
      pool.nodes.push_back(n);
    }
  }
  config.pools = {pool};
  return config;
}

workload::TenantLoadParams trace_params() {
  workload::TenantLoadParams p;
  // Dense enough that a 10 ms gateway window holds several arrivals (the
  // coalescing under test), short enough that 8 nodes drain the backlog.
  p.tenant_count = 12;
  p.base_rate = 200.0;
  p.horizon = 4 * sim::kSecond;
  p.flashes = {{1 * sim::kSecond, 2 * sim::kSecond, 5.0}};
  p.mean_duration_s = 0.04;
  p.min_duration_s = 0.01;
  p.max_nodes = 2;
  p.seed = 42;
  return p;
}

SubmitRequest request_of(const workload::TenantEvent& ev) {
  SubmitRequest r;
  r.user = workload::tenant_name(ev.tenant);
  r.pool = "batch";
  r.nodes = ev.nodes;
  r.duration = ev.duration;
  return r;
}

struct TraceOutcome {
  std::map<std::string, unsigned> jobs_per_user;
  std::map<std::string, double> usage;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t timed_out = 0;
  bool all_terminal_completed = true;
};

TraceOutcome outcome_of(const PwsScheduler& sched) {
  TraceOutcome out;
  for (const auto& [id, job] : sched.jobs()) {
    ++out.jobs_per_user[job.user];
    if (job.state != JobState::kCompleted) out.all_terminal_completed = false;
  }
  out.usage = sched.user_usage();
  out.completed = sched.stats().completed;
  out.failed = sched.stats().failed;
  out.timed_out = sched.stats().timed_out;
  return out;
}

// Runs the trace with direct per-job submission on the legacy config
// (save-per-change checkpoints, no admission).
TraceOutcome run_sequential(const std::vector<workload::TenantEvent>& events) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  PwsSystem pws(h.kernel, one_pool_config(h.cluster));
  h.run_s(1.0);

  auto& engine = h.cluster.engine();
  for (const auto& ev : events) {
    engine.schedule_after(ev.arrival, [&pws, ev] { pws.submit(request_of(ev)); });
  }
  h.run_s(sim::to_seconds(trace_params().horizon) + 20.0);
  return outcome_of(pws.scheduler());
}

// Runs the same trace through the gateway on the batched config
// (coalesced checkpoints, batch RPCs, incremental passes).
TraceOutcome run_batched(const std::vector<workload::TenantEvent>& events) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  PwsConfig config = one_pool_config(h.cluster);
  config.checkpoint_interval = 10 * sim::kMillisecond;
  PwsSystem pws(h.kernel, config);
  h.run_s(1.0);

  GatewayConfig gw;
  gw.scheduler = pws.scheduler().address();
  SubmissionGateway gateway(
      h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0], gw);

  auto& engine = h.cluster.engine();
  for (const auto& ev : events) {
    engine.schedule_after(ev.arrival,
                          [&gateway, ev] { gateway.submit(request_of(ev)); });
  }
  h.run_s(sim::to_seconds(trace_params().horizon) + 20.0);

  EXPECT_EQ(gateway.stats().accepted, events.size());
  EXPECT_EQ(gateway.backlog(), 0u);
  EXPECT_EQ(gateway.inflight(), 0u);
  // The window actually coalesced: far fewer wire batches than jobs.
  EXPECT_LT(gateway.stats().batches_sent, events.size() / 2);
  return outcome_of(pws.scheduler());
}

TEST(PwsBatchEquivalenceTest, GatewayTraceMatchesSequentialSubmission) {
  const auto events = workload::generate_tenant_load(trace_params());
  ASSERT_GT(events.size(), 50u);

  const TraceOutcome seq = run_sequential(events);
  const TraceOutcome bat = run_batched(events);

  // Every job reaches the same terminal state in both runs.
  EXPECT_EQ(seq.completed, events.size());
  EXPECT_EQ(bat.completed, seq.completed);
  EXPECT_EQ(bat.failed, 0u);
  EXPECT_EQ(bat.timed_out, 0u);
  EXPECT_TRUE(seq.all_terminal_completed);
  EXPECT_TRUE(bat.all_terminal_completed);

  // Identical per-user job counts and fairness shares (accumulated usage).
  EXPECT_EQ(bat.jobs_per_user, seq.jobs_per_user);
  ASSERT_EQ(bat.usage.size(), seq.usage.size());
  for (const auto& [user, seconds] : seq.usage) {
    auto it = bat.usage.find(user);
    ASSERT_NE(it, bat.usage.end()) << user;
    EXPECT_NEAR(it->second, seconds, 1e-9) << user;
  }
}

SubmitRequest req(const std::string& user, unsigned nodes, double seconds,
                  double walltime_s = 0.0) {
  SubmitRequest r;
  r.user = user;
  r.pool = "batch";
  r.nodes = nodes;
  r.duration = sim::from_seconds(seconds);
  r.walltime_limit = sim::from_seconds(walltime_s);
  return r;
}

class PwsWalltimeTest : public ::testing::Test {
 protected:
  PwsWalltimeTest()
      : h(small_cluster_spec(), fast_ft_params()),
        pws(h.kernel, one_pool_config(h.cluster)) {
    h.run_s(1.0);
  }

  KernelHarness h;
  PwsSystem pws;
};

TEST_F(PwsWalltimeTest, ExceededWalltimeKillsJob) {
  const JobId hog = pws.submit(req("hog", 1, 30.0, 2.0));
  const JobId ok = pws.submit(req("ok", 1, 1.0, 10.0));
  h.run_s(5.0);

  EXPECT_EQ(pws.scheduler().job(hog)->state, JobState::kTimedOut);
  EXPECT_EQ(pws.scheduler().job(ok)->state, JobState::kCompleted);
  EXPECT_EQ(pws.scheduler().stats().timed_out, 1u);
}

TEST_F(PwsWalltimeTest, WalltimeMeasuredFromRelaunchAfterRequeue) {
  // 2 s of work under a 2.5 s limit: comfortably within walltime — unless a
  // stale expiry entry from the first launch survives the requeue. The node
  // crash pushes the finish past the FIRST launch's expiry time, so a heap
  // entry that is not revalidated against the new started_at would kill it.
  const JobId id = pws.submit(req("alice", 1, 2.0, 2.5));
  h.run_s(1.0);
  const Job* job = pws.scheduler().job(id);
  ASSERT_EQ(job->state, JobState::kRunning);

  h.injector.crash_node(job->allocated[0]);
  h.run_s(15.0);  // detection + requeue + relaunch + full 2 s of work

  job = pws.scheduler().job(id);
  EXPECT_EQ(job->requeues, 1u);
  EXPECT_EQ(job->state, JobState::kCompleted);
  EXPECT_EQ(pws.scheduler().stats().timed_out, 0u);
  EXPECT_EQ(pws.scheduler().stats().requeued, 1u);
}

}  // namespace
}  // namespace phoenix::pws
