// Synthetic MPI job tests, plus checkpoint namespace message protocol.
#include "workload/mpi_job.h"

#include <gtest/gtest.h>

#include "kernel/checkpoint/checkpoint_service.h"
#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::workload {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class MpiJobTest : public ::testing::Test {
 protected:
  MpiJobTest() : h(small_cluster_spec(), fast_ft_params()) {
    config.nodes = h.cluster.compute_nodes(net::PartitionId{0});
    config.step_interval = 100 * sim::kMillisecond;
    config.block_bytes = 64 * 1024;
  }

  KernelHarness h;
  MpiJobConfig config;
};

TEST_F(MpiJobTest, RingExchangeFlows) {
  MpiJob job(h.cluster, config);
  job.start();
  h.run_s(5.0);
  job.stop();

  EXPECT_EQ(job.ranks(), 4u);
  // ~50 steps per rank in 5 s of 100 ms steps.
  for (std::size_t r = 0; r < job.ranks(); ++r) {
    EXPECT_GE(job.rank(r).steps_sent(), 45u);
    EXPECT_GE(job.rank(r).blocks_received(), 40u);
  }
  EXPECT_GE(job.total_steps(), 4u * 45u);
}

TEST_F(MpiJobTest, TrafficAccountedOnFabric) {
  h.cluster.fabric().reset_stats();
  MpiJob job(h.cluster, config);
  job.start();
  h.run_s(3.0);
  job.stop();
  const auto stats = h.cluster.fabric().total_stats();
  ASSERT_TRUE(stats.bytes_by_type.contains("app.mpi_block"));
  // ~30 steps x 4 ranks x 64 KiB.
  EXPECT_GT(stats.bytes_by_type.at("app.mpi_block"), 4u * 25u * 64u * 1024u);
}

TEST_F(MpiJobTest, DurationBoundedJobStops) {
  config.duration = 2 * sim::kSecond;
  MpiJob job(h.cluster, config);
  job.start();
  h.run_s(10.0);
  const auto steps_at_10s = job.total_steps();
  h.run_s(5.0);
  EXPECT_EQ(job.total_steps(), steps_at_10s);  // no steps after duration
  EXPECT_LE(steps_at_10s, 4u * 21u);
}

TEST_F(MpiJobTest, RankDeathStopsItsTrafficOnly) {
  MpiJob job(h.cluster, config);
  job.start();
  h.run_s(2.0);
  h.injector.crash_node(config.nodes[1]);
  const auto rank1_steps = job.rank(1).steps_sent();
  h.run_s(3.0);
  EXPECT_EQ(job.rank(1).steps_sent(), rank1_steps);
  EXPECT_GT(job.rank(0).steps_sent(), rank1_steps);  // survivors continue
}

TEST(CheckpointNamespaceTest, ListAndDeleteNamespaceMessages) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(1.0);
  auto& cs = h.kernel.checkpoint_service(net::PartitionId{0});
  cs.save_local("svc-a", "k1", "1", false);
  cs.save_local("svc-a", "k2", "2", false);
  cs.save_local("svc-b", "k1", "3", false);

  TestClient client(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0]);
  auto list = std::make_shared<kernel::CheckpointListMsg>();
  list->service = "svc-a";
  list->reply_to = client.address();
  list->request_id = 1;
  client.send_any(cs.address(), list);
  h.run_s(1.0);
  const auto* listed = client.last_of_type<kernel::CheckpointListReplyMsg>();
  ASSERT_NE(listed, nullptr);
  EXPECT_EQ(listed->keys, (std::vector<std::string>{"k1", "k2"}));

  auto wipe = std::make_shared<kernel::CheckpointDeleteNamespaceMsg>();
  wipe->service = "svc-a";
  wipe->reply_to = client.address();
  wipe->request_id = 2;
  client.send_any(cs.address(), wipe);
  h.run_s(1.0);
  const auto* wiped = client.last_of_type<kernel::CheckpointDeleteNamespaceReplyMsg>();
  ASSERT_NE(wiped, nullptr);
  EXPECT_EQ(wiped->removed, 2u);
  EXPECT_TRUE(cs.list_keys("svc-a").empty());
  EXPECT_EQ(cs.list_keys("svc-b").size(), 1u);  // other namespaces untouched
}

TEST(CheckpointNamespaceTest, NamespaceDeleteReplicates) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(1.0);
  auto& cs0 = h.kernel.checkpoint_service(net::PartitionId{0});
  cs0.save_local("doomed", "a", "1");
  cs0.save_local("doomed", "b", "2");
  h.run_s(1.0);
  auto& cs1 = h.kernel.checkpoint_service(net::PartitionId{1});
  ASSERT_EQ(cs1.list_keys("doomed").size(), 2u);  // replicas landed

  cs0.delete_namespace("doomed");
  h.run_s(1.0);
  EXPECT_TRUE(cs1.list_keys("doomed").empty());
}

}  // namespace
}  // namespace phoenix::workload
