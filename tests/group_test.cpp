// Group service tests: heartbeat monitoring, fault diagnosis (process vs.
// node vs. network), WD restart, meta-group ring membership, Leader /
// Princess takeover, GSD restart and migration.
#include "kernel/group/group_service.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class GroupServiceTest : public ::testing::Test {
 protected:
  GroupServiceTest() : h(small_cluster_spec(), fast_ft_params()) {
    // Let the system settle: a few heartbeat rounds.
    h.run_s(5.0);
    h.kernel.fault_log().clear();
  }

  phoenix::testing::KernelHarness h;
};

TEST_F(GroupServiceTest, BootFormsFullMetaGroup) {
  const auto& view = h.kernel.gsd(net::PartitionId{0}).view();
  EXPECT_EQ(view.members.size(), 2u);
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{0}).is_leader());
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{1}).is_princess());
  EXPECT_FALSE(h.kernel.gsd(net::PartitionId{1}).is_leader());
}

TEST_F(GroupServiceTest, HeartbeatsFlow) {
  const auto before = h.kernel.gsd(net::PartitionId{0}).heartbeats_received();
  h.run_s(4.0);
  EXPECT_GT(h.kernel.gsd(net::PartitionId{0}).heartbeats_received(), before);
}

TEST_F(GroupServiceTest, HealthyClusterLogsNoFaults) {
  h.run_s(30.0);
  EXPECT_TRUE(h.kernel.fault_log().records().empty());
}

TEST_F(GroupServiceTest, WdProcessFailureDiagnosedAndRestarted) {
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[1];
  const sim::SimTime injected = h.injector.kill_daemon(h.kernel.watch_daemon(victim));
  h.run_s(10.0);

  const auto record = h.kernel.fault_log().last("WD");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->kind, FaultKind::kProcessFailure);
  EXPECT_EQ(record->node, victim);
  EXPECT_TRUE(record->recovered);
  // Detection happens at the first check after one missed heartbeat; with
  // an arbitrary fault phase that is at most ~2 intervals.
  const auto detect = record->detected_at - injected;
  EXPECT_GE(detect, 1 * sim::kSecond);
  EXPECT_LE(detect, 2 * 2 * sim::kSecond + sim::kSecond);
  // Diagnosis: probe RTT + confirmation round, well under a second.
  EXPECT_LT(record->diagnosed_at - record->detected_at, sim::kSecond);
  // The WD is actually running again and beating.
  EXPECT_TRUE(h.kernel.watch_daemon(victim).alive());
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{0}).node_status(victim),
            GroupServiceDaemon::NodeStatus::kHealthy);
}

TEST_F(GroupServiceTest, NodeFailureDiagnosedNoMigrationForComputeNode) {
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[0];
  h.injector.crash_node(victim);
  h.run_s(12.0);

  const auto record = h.kernel.fault_log().last("WD");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->kind, FaultKind::kNodeFailure);
  EXPECT_EQ(record->node, victim);
  EXPECT_TRUE(record->recovered);
  EXPECT_EQ(record->recovered_at, record->diagnosed_at);  // nothing to migrate
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{0}).node_status(victim),
            GroupServiceDaemon::NodeStatus::kNodeFailed);
}

TEST_F(GroupServiceTest, NodeRecoveryDetectedWhenWdResumes) {
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[0];
  h.injector.crash_node(victim);
  h.run_s(12.0);
  ASSERT_EQ(h.kernel.gsd(net::PartitionId{0}).node_status(victim),
            GroupServiceDaemon::NodeStatus::kNodeFailed);

  h.injector.restore_node(victim);
  h.kernel.watch_daemon(victim).start();
  h.run_s(5.0);
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{0}).node_status(victim),
            GroupServiceDaemon::NodeStatus::kHealthy);
}

TEST_F(GroupServiceTest, SingleNetworkFailureDiagnosedWithZeroRecovery) {
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[2];
  h.injector.cut_interface(victim, net::NetworkId{1});
  h.run_s(8.0);

  const auto record = h.kernel.fault_log().last("WD", FaultKind::kNetworkFailure);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->node, victim);
  EXPECT_EQ(record->network, net::NetworkId{1});
  EXPECT_TRUE(record->recovered);
  EXPECT_EQ(record->recovered_at, record->diagnosed_at);
  // Diagnosis is table analysis: sub-millisecond.
  EXPECT_LE(record->diagnosed_at - record->detected_at, sim::kMillisecond);
  // The node itself stays healthy.
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{0}).node_status(victim),
            GroupServiceDaemon::NodeStatus::kHealthy);
}

TEST_F(GroupServiceTest, AllNetworksCutDiagnosedAsNodeFailure) {
  // With every interface down the node is unreachable; the GSD cannot and
  // should not distinguish this from a crash.
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[3];
  for (std::uint8_t n = 0; n < 3; ++n) {
    h.injector.cut_interface(victim, net::NetworkId{n});
  }
  h.run_s(12.0);
  const auto record = h.kernel.fault_log().last("WD");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->kind, FaultKind::kNodeFailure);
}

TEST_F(GroupServiceTest, GsdProcessFailureRestartedInPlace) {
  auto& victim = h.kernel.gsd(net::PartitionId{1});
  const net::NodeId victim_node = victim.node_id();
  h.injector.kill_daemon(victim);
  h.run_s(15.0);

  const auto record = h.kernel.fault_log().last("GSD");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->kind, FaultKind::kProcessFailure);
  EXPECT_EQ(record->partition, net::PartitionId{1});
  EXPECT_TRUE(record->recovered);

  // Restarted on the SAME node, rejoined the ring at the tail.
  auto& recovered = h.kernel.gsd(net::PartitionId{1});
  EXPECT_TRUE(recovered.alive());
  EXPECT_EQ(recovered.node_id(), victim_node);
  const auto& view = h.kernel.gsd(net::PartitionId{0}).view();
  EXPECT_EQ(view.members.size(), 2u);
  EXPECT_TRUE(view.contains(net::PartitionId{1}));
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{0}).is_leader());
}

TEST_F(GroupServiceTest, ServerNodeCrashMigratesGsdToBackup) {
  const net::NodeId server = h.cluster.server_node(net::PartitionId{1});
  const net::NodeId backup = h.cluster.backup_nodes(net::PartitionId{1})[0];
  h.injector.crash_node(server);
  h.run_s(20.0);

  const auto record = h.kernel.fault_log().last("GSD");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->kind, FaultKind::kNodeFailure);
  EXPECT_TRUE(record->recovered);

  auto& migrated = h.kernel.gsd(net::PartitionId{1});
  EXPECT_TRUE(migrated.alive());
  EXPECT_EQ(migrated.node_id(), backup);
  EXPECT_EQ(h.kernel.service_node(ServiceKind::kGroupService, net::PartitionId{1}),
            backup);
  // Ring reformed with both partitions.
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{0}).view().members.size(), 2u);
}

TEST_F(GroupServiceTest, ServerNodeCrashAlsoRecoversKernelServices) {
  const net::NodeId server = h.cluster.server_node(net::PartitionId{1});
  const net::NodeId backup = h.cluster.backup_nodes(net::PartitionId{1})[0];
  h.injector.crash_node(server);
  h.run_s(30.0);

  for (const char* component : {"ES", "DB", "CS"}) {
    const auto record = h.kernel.fault_log().last(component);
    ASSERT_TRUE(record.has_value()) << component;
    EXPECT_EQ(record->kind, FaultKind::kNodeFailure) << component;
    EXPECT_TRUE(record->recovered) << component;
  }
  EXPECT_TRUE(h.kernel.event_service(net::PartitionId{1}).alive());
  EXPECT_EQ(h.kernel.event_service(net::PartitionId{1}).node_id(), backup);
  EXPECT_TRUE(h.kernel.checkpoint_service(net::PartitionId{1}).alive());
  EXPECT_TRUE(h.kernel.bulletin(net::PartitionId{1}).alive());

  // Partition WDs re-pointed their heartbeats to the migrated GSD.
  const net::NodeId compute = h.cluster.compute_nodes(net::PartitionId{1})[0];
  EXPECT_EQ(h.kernel.watch_daemon(compute).gsd_address().node, backup);
}

TEST_F(GroupServiceTest, LeaderFailurePromotesPrincess) {
  // Partition 0 holds the leader; crash its server node.
  const net::NodeId server = h.cluster.server_node(net::PartitionId{0});
  h.injector.crash_node(server);
  h.run_s(20.0);

  // The princess (partition 1) must now lead.
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{1}).is_leader());
  // The recovered partition-0 GSD rejoined at the tail, not as leader.
  EXPECT_FALSE(h.kernel.gsd(net::PartitionId{0}).is_leader());
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{0}).alive());
}

TEST_F(GroupServiceTest, GsdNetworkFailureDetectedByRingSuccessor) {
  const net::NodeId server = h.cluster.server_node(net::PartitionId{0});
  const net::NodeId peer_server = h.cluster.server_node(net::PartitionId{1});
  h.injector.cut_interface(server, net::NetworkId{2});
  h.run_s(8.0);
  // The node's own GSD pins it precisely via WD heartbeat analysis.
  const auto wd = h.kernel.fault_log().last("WD", FaultKind::kNetworkFailure);
  ASSERT_TRUE(wd.has_value());
  EXPECT_EQ(wd->node, server);
  EXPECT_EQ(wd->network, net::NetworkId{2});
  EXPECT_EQ(wd->recovered_at, wd->diagnosed_at);
  // Ring heartbeats over that network also go stale; the observing GSD
  // attributes the loss to one endpoint of the ring edge (it cannot tell a
  // peer NIC from its own — a documented ambiguity of link-level faults).
  const auto gsd = h.kernel.fault_log().last("GSD", FaultKind::kNetworkFailure);
  ASSERT_TRUE(gsd.has_value());
  EXPECT_TRUE(gsd->node == server || gsd->node == peer_server);
  EXPECT_EQ(gsd->network, net::NetworkId{2});
  EXPECT_EQ(gsd->recovered_at, gsd->diagnosed_at);
}

TEST_F(GroupServiceTest, MetaViewSurvivesDoubleFault) {
  // Crash two compute nodes at once; the ring (server-level) is unaffected
  // and both faults are diagnosed.
  const net::NodeId a = h.cluster.compute_nodes(net::PartitionId{0})[0];
  const net::NodeId b = h.cluster.compute_nodes(net::PartitionId{1})[0];
  h.injector.crash_node(a);
  h.injector.crash_node(b);
  h.run_s(12.0);
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{0}).view().members.size(), 2u);
  std::size_t node_failures = 0;
  for (const auto& r : h.kernel.fault_log().records()) {
    if (r.component == "WD" && r.kind == FaultKind::kNodeFailure) ++node_failures;
  }
  EXPECT_EQ(node_failures, 2u);
}

TEST(GroupServiceRingTest, LargerRingFormsAndSurvivesMemberFailure) {
  cluster::ClusterSpec spec = small_cluster_spec();
  spec.partitions = 5;
  KernelHarness h(spec, fast_ft_params());
  h.run_s(5.0);

  for (std::uint32_t p = 0; p < 5; ++p) {
    EXPECT_EQ(h.kernel.gsd(net::PartitionId{p}).view().members.size(), 5u);
  }
  // Kill the GSD in the middle of the ring.
  h.injector.kill_daemon(h.kernel.gsd(net::PartitionId{2}));
  h.run_s(15.0);
  // Everyone converged on a view containing all five members again
  // (partition 2 rejoined after the in-place restart).
  for (std::uint32_t p = 0; p < 5; ++p) {
    EXPECT_EQ(h.kernel.gsd(net::PartitionId{p}).view().members.size(), 5u)
        << "partition " << p;
  }
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{2}).alive());
}

TEST(MetaViewTest, RingOrderAndRoles) {
  MetaView view;
  view.view_id = 3;
  for (std::uint32_t p = 0; p < 4; ++p) {
    view.members.push_back(MetaMember{
        net::PartitionId{p}, {net::NodeId{p * 10}, net::PortId{2}}, 0});
  }
  EXPECT_EQ(view.leader()->partition.value, 0u);
  EXPECT_EQ(view.princess()->partition.value, 1u);
  EXPECT_EQ(view.successor_of(net::PartitionId{3})->partition.value, 0u);
  EXPECT_EQ(view.predecessor_of(net::PartitionId{0})->partition.value, 3u);
  EXPECT_TRUE(view.remove(net::PartitionId{1}));
  EXPECT_FALSE(view.remove(net::PartitionId{1}));
  EXPECT_EQ(view.princess()->partition.value, 2u);  // next member takes over
}

TEST(MetaViewTest, SerializationRoundTrip) {
  MetaView view;
  view.view_id = 42;
  view.members.push_back(
      MetaMember{net::PartitionId{0}, {net::NodeId{0}, net::PortId{2}}, 0});
  view.members.push_back(
      MetaMember{net::PartitionId{3}, {net::NodeId{17}, net::PortId{2}}, 123456});
  const MetaView parsed = MetaView::deserialize(view.serialize());
  EXPECT_EQ(parsed.view_id, 42u);
  ASSERT_EQ(parsed.members.size(), 2u);
  EXPECT_EQ(parsed.members[1].partition.value, 3u);
  EXPECT_EQ(parsed.members[1].gsd.node.value, 17u);
  EXPECT_EQ(parsed.members[1].incarnation, 123456u);
}

TEST(MetaViewTest, DeserializeEmptyAndMalformed) {
  EXPECT_TRUE(MetaView::deserialize("").members.empty());
  const MetaView v = MetaView::deserialize("7|bad,data");
  EXPECT_EQ(v.view_id, 7u);
  EXPECT_TRUE(v.members.empty());
}

TEST(SinglePartitionTest, SingletonClusterRunsWithoutMetaTraffic) {
  cluster::ClusterSpec spec = small_cluster_spec();
  spec.partitions = 1;
  KernelHarness h(spec, fast_ft_params());
  h.run_s(10.0);
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{0}).is_leader());
  EXPECT_TRUE(h.kernel.fault_log().records().empty());
}

}  // namespace
}  // namespace phoenix::kernel
