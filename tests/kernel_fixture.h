// Shared test fixture: a booted Phoenix kernel on a small simulated cluster.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "faults/fault_injector.h"
#include "faults/scenario.h"
#include "kernel/kernel.h"

namespace phoenix::testing {

struct KernelHarness {
  explicit KernelHarness(cluster::ClusterSpec spec, kernel::FtParams params = {})
      : cluster(spec), kernel(cluster, params), injector(cluster) {
    kernel.boot();
  }

  /// Runs the simulation forward by `seconds` of simulated time.
  void run_s(double seconds) { cluster.engine().run_for(sim::from_seconds(seconds)); }
  void run(sim::SimTime t) { cluster.engine().run_for(t); }

  /// Runs until just after `node`'s watch daemon sends its next heartbeat —
  /// the paper's fault-injection point ("right after a heartbeat" puts the
  /// full interval between injection and detection).
  void run_until_after_heartbeat(net::NodeId node) {
    const auto& wd = kernel.watch_daemon(node);
    const auto sent = wd.heartbeats_sent();
    while (wd.heartbeats_sent() == sent) {
      if (!cluster.engine().step()) break;
    }
    run(10 * sim::kMillisecond);
  }

  /// Compiles a declarative fault scenario at the current instant and runs
  /// the simulation until `tail_s` seconds past its last scheduled step.
  void play(const faults::Scenario& scenario, double tail_s) {
    scenario.apply(injector, cluster.now());
    run_s(sim::to_seconds(scenario.duration()) + tail_s);
  }

  cluster::Cluster cluster;
  kernel::PhoenixKernel kernel;
  faults::FaultInjector injector;
};

/// Small default: 2 partitions x (1 server + 1 backup + 4 computes).
inline cluster::ClusterSpec small_cluster_spec() {
  cluster::ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 4;
  spec.backups_per_partition = 1;
  spec.networks = 3;
  spec.cpus_per_node = 4;
  return spec;
}

/// Fast fault-tolerance parameters: 2 s heartbeats so tests stay quick.
inline kernel::FtParams fast_ft_params() {
  kernel::FtParams p;
  p.heartbeat_interval = 2 * sim::kSecond;
  p.detector_sample_interval = 1 * sim::kSecond;
  return p;
}

}  // namespace phoenix::testing
