// Soak tests: long simulated runs under continuous random churn, checking
// global invariants at the end. Parameterized over RNG seeds (property
// style): whatever the fault sequence, the kernel converges whenever
// recovery is physically possible, and PWS neither loses jobs nor
// double-allocates nodes.
#include <gtest/gtest.h>

#include <set>

#include "kernel_fixture.h"
#include "pws/pws.h"
#include "workload/job_trace.h"
#include "workload/resource_model.h"

namespace phoenix {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;

class KernelSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelSoakTest, RandomChurnConverges) {
  cluster::ClusterSpec spec;
  spec.partitions = 4;
  spec.computes_per_partition = 4;
  spec.backups_per_partition = 2;
  spec.seed = GetParam();
  KernelHarness h(spec, fast_ft_params());
  h.run_s(5.0);

  sim::Rng rng(GetParam() * 977);
  std::set<std::uint32_t> crashed_nodes;

  // Ten minutes of simulated churn: every ~20 s something breaks or heals.
  for (int step = 0; step < 30; ++step) {
    const double dice = rng.uniform();
    if (dice < 0.25) {
      // Kill a random WD.
      const auto node = net::NodeId{static_cast<std::uint32_t>(
          rng.uniform_int(0, h.cluster.node_count() - 1))};
      if (h.cluster.node(node).alive()) {
        h.injector.kill_daemon(h.kernel.watch_daemon(node));
      }
    } else if (dice < 0.45) {
      // Crash a random COMPUTE node (keep servers/backups recoverable).
      const auto p = net::PartitionId{static_cast<std::uint32_t>(rng.uniform_int(0, 3))};
      const auto computes = h.cluster.compute_nodes(p);
      const auto node = computes[rng.uniform_int(0, computes.size() - 1)];
      if (h.cluster.node(node).alive()) {
        h.injector.crash_node(node);
        crashed_nodes.insert(node.value);
      }
    } else if (dice < 0.6) {
      // Cut a random interface.
      const auto node = net::NodeId{static_cast<std::uint32_t>(
          rng.uniform_int(0, h.cluster.node_count() - 1))};
      h.injector.cut_interface(node,
                               net::NetworkId{static_cast<std::uint8_t>(
                                   rng.uniform_int(0, 2))});
    } else if (dice < 0.72) {
      // Kill a random partition service.
      const auto p = net::PartitionId{static_cast<std::uint32_t>(rng.uniform_int(0, 3))};
      switch (rng.uniform_int(0, 2)) {
        case 0: h.injector.kill_daemon(h.kernel.event_service(p)); break;
        case 1: h.injector.kill_daemon(h.kernel.bulletin(p)); break;
        default: h.injector.kill_daemon(h.kernel.checkpoint_service(p)); break;
      }
    } else if (dice < 0.82 && !crashed_nodes.empty()) {
      // Heal a crashed node.
      const auto it = crashed_nodes.begin();
      const net::NodeId node{*it};
      crashed_nodes.erase(it);
      h.injector.restore_node(node);
      h.kernel.watch_daemon(node).start();
      h.kernel.detector(node).start();
      h.kernel.ppm(node).start();
      for (std::uint8_t n = 0; n < 3; ++n) {
        h.injector.restore_interface(node, net::NetworkId{n});
      }
    }
    h.run_s(20.0);
  }
  // Quiet period: let every pending recovery complete.
  h.run_s(60.0);

  // Invariants: the ring has all four members, exactly one leader, every
  // partition's kernel services are alive, and no fault on a live node is
  // left unrecovered.
  std::size_t leaders = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    auto& gsd = h.kernel.gsd(net::PartitionId{p});
    ASSERT_TRUE(gsd.alive()) << "partition " << p << " seed " << GetParam();
    EXPECT_EQ(gsd.view().members.size(), 4u) << "partition " << p;
    if (gsd.is_leader()) ++leaders;
    EXPECT_TRUE(h.kernel.event_service(net::PartitionId{p}).alive());
    EXPECT_TRUE(h.kernel.checkpoint_service(net::PartitionId{p}).alive());
    EXPECT_TRUE(h.kernel.bulletin(net::PartitionId{p}).alive());
  }
  EXPECT_EQ(leaders, 1u);
  for (const auto& record : h.kernel.fault_log().records()) {
    if (record.kind == kernel::FaultKind::kProcessFailure &&
        h.cluster.node(record.node).alive()) {
      EXPECT_TRUE(record.recovered)
          << record.component << " on node " << record.node.value << " seed "
          << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelSoakTest,
                         ::testing::Values(101, 211, 307, 401));

class PwsSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PwsSoakTest, RandomTraceSchedulesSafely) {
  cluster::ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 8;
  spec.backups_per_partition = 1;
  spec.seed = GetParam();
  KernelHarness h(spec, fast_ft_params());

  pws::PwsConfig config;
  pws::PoolConfig pool_a, pool_b;
  pool_a.name = "alpha";
  pool_a.policy = pws::SchedPolicy::kBackfill;
  pool_a.nodes = h.cluster.compute_nodes(net::PartitionId{0});
  pool_b.name = "beta";
  pool_b.policy = pws::SchedPolicy::kFairShare;
  pool_b.nodes = h.cluster.compute_nodes(net::PartitionId{1});
  config.pools = {pool_a, pool_b};
  pws::PwsSystem pws_system(h.kernel, config);
  h.run_s(2.0);

  workload::TraceParams trace;
  trace.job_count = 80;
  trace.mean_interarrival_s = 8.0;
  trace.mean_duration_s = 40.0;
  trace.min_duration_s = 5.0;
  trace.max_nodes = 8;
  trace.pools = {"alpha", "beta"};
  trace.seed = GetParam();
  for (const auto& job : workload::generate_trace(trace)) {
    h.injector.schedule(h.cluster.now() + job.arrival,
                        [&pws_system, job] {
                          pws::SubmitRequest r;
                          r.name = job.name;
                          r.user = job.user;
                          r.pool = job.pool;
                          r.nodes = job.nodes;
                          r.duration = job.duration;
                          pws_system.scheduler().submit(r);
                        },
                        "submit " + job.name);
  }

  // Mid-trace disturbances: a compute node crash and a scheduler kill.
  h.injector.schedule(sim::from_seconds(120),
                      [&h] { h.injector.crash_node(h.cluster.compute_nodes(net::PartitionId{0})[2]); },
                      "crash compute");
  h.injector.schedule(sim::from_seconds(250),
                      [&pws_system] { pws_system.scheduler().kill(); },
                      "kill scheduler");

  // Run long enough for the whole trace plus retries.
  h.run_s(80.0 * 8.0 + 1200.0);

  const auto& scheduler = pws_system.scheduler();
  ASSERT_TRUE(scheduler.alive());

  // Invariant 1: every job reached a terminal state.
  for (const auto& [id, job] : scheduler.jobs()) {
    EXPECT_TRUE(job.terminal())
        << "job " << id << " stuck in " << std::string(pws::to_string(job.state))
        << " seed " << GetParam();
  }
  // Invariant 2: completions + failures + rejections == submissions seen.
  const auto& stats = scheduler.stats();
  EXPECT_EQ(scheduler.jobs().size(),
            stats.completed + stats.failed + stats.rejected);
  EXPECT_GT(stats.completed, 60u);  // the vast majority completes

  // Invariant 3: node-time conservation — no overlapping allocations.
  // Reconstruct per-node busy intervals from the job table.
  std::map<std::uint32_t, std::vector<std::pair<sim::SimTime, sim::SimTime>>> busy;
  for (const auto& [id, job] : scheduler.jobs()) {
    if (job.state != pws::JobState::kCompleted || job.started_at == 0) continue;
    for (net::NodeId n : job.allocated) {
      busy[n.value].emplace_back(job.started_at, job.finished_at);
    }
  }
  for (auto& [node, intervals] : busy) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second)
          << "node " << node << " double-booked, seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PwsSoakTest, ::testing::Values(5, 17, 29));

}  // namespace
}  // namespace phoenix
