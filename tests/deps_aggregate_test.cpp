// Tests for PWS job dependencies (afterok) and bulletin aggregate pushdown.
#include <gtest/gtest.h>

#include "gridview/gridview.h"
#include "kernel_fixture.h"
#include "pws/pws.h"
#include "test_client.h"

namespace phoenix {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class JobDepsTest : public ::testing::Test {
 protected:
  JobDepsTest() : h(small_cluster_spec(), fast_ft_params()) {
    pws::PwsConfig config;
    pws::PoolConfig pool;
    pool.name = "batch";
    for (std::uint32_t p = 0; p < 2; ++p) {
      for (net::NodeId n : h.cluster.compute_nodes(net::PartitionId{p})) {
        pool.nodes.push_back(n);
      }
    }
    config.pools = {pool};
    pws = std::make_unique<pws::PwsSystem>(h.kernel, config);
    h.run_s(1.0);
  }

  pws::JobId submit(unsigned nodes, double seconds, pws::JobId after_ok = 0,
                    double walltime_s = 0) {
    pws::SubmitRequest r;
    r.user = "u";
    r.pool = "batch";
    r.nodes = nodes;
    r.duration = sim::from_seconds(seconds);
    r.after_ok = after_ok;
    r.walltime_limit = sim::from_seconds(walltime_s);
    return pws->submit(r);
  }

  KernelHarness h;
  std::unique_ptr<pws::PwsSystem> pws;
};

TEST_F(JobDepsTest, DependentWaitsForCompletion) {
  const auto first = submit(2, 5.0);
  const auto second = submit(2, 5.0, first);
  h.run_s(3.0);
  EXPECT_EQ(pws->scheduler().job(first)->state, pws::JobState::kRunning);
  EXPECT_EQ(pws->scheduler().job(second)->state, pws::JobState::kQueued)
      << "plenty of free nodes, but the dependency gates it";
  h.run_s(5.0);
  EXPECT_EQ(pws->scheduler().job(first)->state, pws::JobState::kCompleted);
  EXPECT_EQ(pws->scheduler().job(second)->state, pws::JobState::kRunning);
  h.run_s(6.0);
  EXPECT_EQ(pws->scheduler().job(second)->state, pws::JobState::kCompleted);
}

TEST_F(JobDepsTest, DependentSkippedWithoutBlockingOthers) {
  const auto long_dep = submit(1, 60.0);
  const auto gated = submit(1, 5.0, long_dep);
  const auto free_job = submit(1, 5.0);
  h.run_s(3.0);
  EXPECT_EQ(pws->scheduler().job(gated)->state, pws::JobState::kQueued);
  EXPECT_EQ(pws->scheduler().job(free_job)->state, pws::JobState::kRunning)
      << "a gated job must not block later runnable work";
}

TEST_F(JobDepsTest, FailedDependencyCancelsDependent) {
  const auto doomed = submit(1, 600.0, 0, /*walltime_s=*/3.0);  // will time out
  const auto gated = submit(1, 5.0, doomed);
  h.run_s(8.0);
  EXPECT_EQ(pws->scheduler().job(doomed)->state, pws::JobState::kTimedOut);
  EXPECT_EQ(pws->scheduler().job(gated)->state, pws::JobState::kCancelled);
}

TEST_F(JobDepsTest, UnknownDependencyCancels) {
  const auto gated = submit(1, 5.0, /*after_ok=*/424242);
  h.run_s(3.0);
  EXPECT_EQ(pws->scheduler().job(gated)->state, pws::JobState::kCancelled);
}

TEST_F(JobDepsTest, ChainOfDependencies) {
  const auto a = submit(1, 3.0);
  const auto b = submit(1, 3.0, a);
  const auto c = submit(1, 3.0, b);
  h.run_s(16.0);
  EXPECT_EQ(pws->scheduler().job(c)->state, pws::JobState::kCompleted);
  // Strict ordering of start times.
  EXPECT_LT(pws->scheduler().job(a)->started_at, pws->scheduler().job(b)->started_at);
  EXPECT_LT(pws->scheduler().job(b)->started_at, pws->scheduler().job(c)->started_at);
}

class AggregateQueryTest : public ::testing::Test {
 protected:
  AggregateQueryTest() : h(small_cluster_spec(), fast_ft_params()) {
    h.run_s(3.0);  // detectors fill the bulletin
  }
  KernelHarness h;
};

TEST_F(AggregateQueryTest, AggregateMatchesRowBasedSummary) {
  TestClient client(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0]);

  auto rows_query = std::make_shared<kernel::DbQueryMsg>();
  rows_query->query_id = 1;
  rows_query->cluster_scope = true;
  rows_query->reply_to = client.address();
  client.send_any(h.kernel.bulletin(net::PartitionId{0}).address(), rows_query);
  h.run_s(1.0);
  const auto* rows = client.last_of_type<kernel::DbQueryReplyMsg>();
  ASSERT_NE(rows, nullptr);
  const auto expected = kernel::summarize(rows->node_rows, rows->app_rows);

  auto agg_query = std::make_shared<kernel::DbQueryMsg>();
  agg_query->query_id = 2;
  agg_query->cluster_scope = true;
  agg_query->aggregate_only = true;
  agg_query->reply_to = client.address();
  client.send_any(h.kernel.bulletin(net::PartitionId{0}).address(), agg_query);
  h.run_s(1.0);
  const auto* agg = client.last_of_type<kernel::DbQueryReplyMsg>();
  ASSERT_NE(agg, nullptr);
  ASSERT_TRUE(agg->aggregated);
  EXPECT_TRUE(agg->node_rows.empty());

  EXPECT_EQ(agg->summary.node_count, expected.node_count);
  EXPECT_EQ(agg->summary.alive_count, expected.alive_count);
  EXPECT_NEAR(agg->summary.avg_cpu_pct, expected.avg_cpu_pct, 1e-9);
  EXPECT_NEAR(agg->summary.avg_mem_pct, expected.avg_mem_pct, 1e-9);
}

TEST_F(AggregateQueryTest, AggregateRepliesAreConstantSize) {
  TestClient client(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0]);
  h.cluster.fabric().reset_stats();
  auto agg = std::make_shared<kernel::DbQueryMsg>();
  agg->query_id = 3;
  agg->cluster_scope = true;
  agg->aggregate_only = true;
  agg->reply_to = client.address();
  client.send_any(h.kernel.bulletin(net::PartitionId{0}).address(), agg);
  h.run_s(1.0);
  const auto agg_bytes =
      h.cluster.fabric().total_stats().bytes_by_type.at("db.query_reply");

  h.cluster.fabric().reset_stats();
  auto rows = std::make_shared<kernel::DbQueryMsg>();
  rows->query_id = 4;
  rows->cluster_scope = true;
  rows->reply_to = client.address();
  client.send_any(h.kernel.bulletin(net::PartitionId{0}).address(), rows);
  h.run_s(1.0);
  const auto row_bytes =
      h.cluster.fabric().total_stats().bytes_by_type.at("db.query_reply");
  EXPECT_LT(agg_bytes, row_bytes / 2);
}

TEST_F(AggregateQueryTest, GridViewAggregateMode) {
  gridview::GridView view(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0],
                          h.kernel, 2 * sim::kSecond);
  view.set_aggregate_mode(true);
  view.start();
  h.run_s(5.0);
  EXPECT_GT(view.refreshes_completed(), 0u);
  EXPECT_EQ(view.last_summary().node_count, h.cluster.node_count());
  EXPECT_TRUE(view.last_nodes().empty());  // only summaries traveled
  EXPECT_EQ(view.last_partitions_included(), 2u);
}

}  // namespace
}  // namespace phoenix
