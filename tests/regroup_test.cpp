// Quorum-safe meta-group failover (FtParams::FailoverPolicy::quorum()):
// regroup concurrence rounds, epoch fencing, and the adversarial scenarios
// the paper's unilateral protocol cannot survive. The twin-harness test at
// the end pins the compatibility contract: the paper() preset reproduces the
// default policy's takeover timings exactly.
#include <gtest/gtest.h>

#include "kernel/group/leader_monitor.h"
#include "kernel/group/meta_group.h"
#include "kernel/ppm/process_manager.h"
#include "kernel/checkpoint/checkpoint_msgs.h"
#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

cluster::ClusterSpec quad_spec() {
  cluster::ClusterSpec spec;
  spec.partitions = 4;
  spec.computes_per_partition = 4;
  spec.backups_per_partition = 2;
  return spec;
}

kernel::FtParams quorum_params() {
  kernel::FtParams p = fast_ft_params();
  p.failover = FtParams::FailoverPolicy::quorum();
  return p;
}

// --- view epoch wire format ---------------------------------------------------

TEST(MetaViewEpochTest, ZeroEpochSerializesExactlyAsLegacy) {
  MetaView v;
  v.view_id = 7;
  v.members.push_back({net::PartitionId{0}, {net::NodeId{4}, net::PortId{2}}, 11});
  const std::string wire = v.serialize();
  EXPECT_EQ(wire.find('@'), std::string::npos);
  EXPECT_EQ(MetaView::deserialize(wire).epoch, 0u);
}

TEST(MetaViewEpochTest, NonzeroEpochRoundtrips) {
  MetaView v;
  v.view_id = 7;
  v.epoch = 3;
  v.members.push_back({net::PartitionId{0}, {net::NodeId{4}, net::PortId{2}}, 11});
  v.members.push_back({net::PartitionId{1}, {net::NodeId{9}, net::PortId{2}}, 12});
  const MetaView back = MetaView::deserialize(v.serialize());
  EXPECT_EQ(back.epoch, 3u);
  EXPECT_EQ(back.view_id, 7u);
  ASSERT_EQ(back.members.size(), 2u);
  EXPECT_EQ(back.members[1].partition, net::PartitionId{1});
}

// --- quorum takeover ----------------------------------------------------------

TEST(RegroupTest, QuorumTakeoverOnLeaderNodeCrash) {
  KernelHarness h(quad_spec(), quorum_params());
  LeaderInvariantMonitor monitor(h.kernel);
  h.run_s(5.0);

  const net::NodeId leader_node = h.cluster.server_node(net::PartitionId{0});
  faults::Scenario s;
  s.crash_node(leader_node);
  h.play(s, 45.0);

  // The Princess assembled a quorum, took over, and bumped the epoch past
  // the quorum bootstrap value of 1.
  auto& princess = h.kernel.gsd(net::PartitionId{1});
  EXPECT_TRUE(princess.is_leader());
  EXPECT_GE(princess.regroup_rounds(), 1u);
  EXPECT_GE(princess.meta_epoch(), 2u);
  EXPECT_EQ(princess.quorum_losses(), 0u);

  // Exactly one leader, never two at the same epoch.
  EXPECT_EQ(monitor.violations(), 0u);
  std::size_t leaders = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    if (h.kernel.gsd(net::PartitionId{p}).alive() &&
        h.kernel.gsd(net::PartitionId{p}).is_leader()) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1u);

  // The fence reached every live node's PPM.
  EXPECT_GE(h.kernel.ppm(h.cluster.server_node(net::PartitionId{2}))
                .witnessed_epoch(),
            2u);

  // The crashed partition's GSD migrated and rejoined at the tail with the
  // new epoch; the takeover is journaled as a recovered node failure.
  EXPECT_EQ(princess.view().members.size(), 4u);
  const auto record = h.kernel.fault_log().last("GSD", FaultKind::kNodeFailure);
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->recovered);
}

TEST(RegroupTest, TwoMemberViewNeverDeposes) {
  // Majority of 2 is 2; a lone survivor's own observation is 1 — quorum is
  // unattainable, so silence alone can never remove the peer. Availability
  // is lost until the peer returns, but split-brain is impossible.
  KernelHarness h(small_cluster_spec(), quorum_params());
  h.run_s(5.0);

  faults::Scenario s;
  s.crash_node(h.cluster.server_node(net::PartitionId{0}));
  h.play(s, 15.0);

  auto& survivor = h.kernel.gsd(net::PartitionId{1});
  EXPECT_GE(survivor.quorum_losses(), 1u);
  EXPECT_GE(survivor.regroup_rounds(), 2u);  // retrying, not giving up
  EXPECT_FALSE(survivor.is_leader());
  EXPECT_EQ(survivor.meta_epoch(), 1u);  // still the quorum bootstrap epoch
  EXPECT_EQ(survivor.view().members.size(), 2u);
}

// --- asymmetric partition -----------------------------------------------------

TEST(RegroupTest, AsymmetricPartitionExoneratesLeaderUnderQuorum) {
  KernelHarness h(quad_spec(), quorum_params());
  LeaderInvariantMonitor monitor(h.kernel);
  h.run_s(5.0);

  // The Princess stops hearing the Leader (one-way blackhole), but every
  // other member still can: their independent probes dissent, the regroup
  // cancels, and the Leader keeps its seat.
  const net::NodeId leader_node = h.cluster.server_node(net::PartitionId{0});
  const net::NodeId princess_node = h.cluster.server_node(net::PartitionId{1});
  faults::Scenario s;
  s.partition_asymmetric(leader_node, princess_node);
  h.play(s, 12.0);

  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{0}).is_leader());
  EXPECT_GE(h.kernel.gsd(net::PartitionId{1}).regroup_rounds(), 1u);
  EXPECT_EQ(monitor.violations(), 0u);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(h.kernel.gsd(net::PartitionId{p}).view().members.size(), 4u) << p;
    // No takeover committed: everyone stays at the quorum bootstrap epoch.
    EXPECT_EQ(h.kernel.gsd(net::PartitionId{p}).meta_epoch(), 1u) << p;
  }
  // At least one solicited member voted (with dissent, or this would have
  // ended in a removal).
  EXPECT_GE(h.kernel.gsd(net::PartitionId{2}).regroup_votes_cast() +
                h.kernel.gsd(net::PartitionId{3}).regroup_votes_cast(),
            1u);
}

TEST(RegroupTest, UnilateralPolicySplitBrainsOnAsymmetricPartition) {
  // The motivation for the quorum policy: under the paper's protocol the
  // same one-way blackhole makes the Princess depose a perfectly healthy
  // Leader — for a window, two members claim leadership at the same epoch.
  KernelHarness h(quad_spec(), fast_ft_params());
  LeaderInvariantMonitor monitor(h.kernel);
  h.run_s(5.0);

  faults::Scenario s;
  s.partition_asymmetric(h.cluster.server_node(net::PartitionId{0}),
                         h.cluster.server_node(net::PartitionId{1}));
  h.play(s, 4.0);

  EXPECT_GE(monitor.violations(), 1u);
  EXPECT_GE(monitor.max_same_epoch_leaders(), 2);
}

// --- dissent veto -------------------------------------------------------------

TEST(RegroupTest, OneDissentVetoesRemovalDespiteMajorityConcurrence) {
  // 5-member view, quorum = 3. The initiator plus two concurring voters
  // reach the majority arithmetically, but the third voter can still reach
  // the suspect and dissents. One dissent must veto the removal outright —
  // a reachable suspect is partitioned from some members, not dead.
  cluster::ClusterSpec spec;
  spec.partitions = 5;
  spec.computes_per_partition = 2;
  spec.backups_per_partition = 1;
  KernelHarness h(spec, quorum_params());
  LeaderInvariantMonitor monitor(h.kernel);
  h.run_s(5.0);

  // Leader's outbound links to the Princess (initiator) and voters 2 and 3
  // are blackholed: the Princess stops hearing it and those voters' probes
  // time out (concur). Partition 4's links stay clean: its probe answers,
  // and its dissent lands well before the 280 ms concur timeouts.
  const net::NodeId leader_node = h.cluster.server_node(net::PartitionId{0});
  faults::Scenario s;
  for (std::uint32_t p = 1; p <= 3; ++p) {
    s.partition_asymmetric(leader_node,
                           h.cluster.server_node(net::PartitionId{p}));
  }
  h.play(s, 12.0);

  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{0}).is_leader());
  EXPECT_GE(h.kernel.gsd(net::PartitionId{1}).regroup_rounds(), 1u);
  EXPECT_GE(h.kernel.gsd(net::PartitionId{4}).regroup_votes_cast(), 1u);
  EXPECT_EQ(monitor.violations(), 0u);
  for (std::uint32_t p = 0; p < 5; ++p) {
    EXPECT_EQ(h.kernel.gsd(net::PartitionId{p}).view().members.size(), 5u) << p;
    EXPECT_EQ(h.kernel.gsd(net::PartitionId{p}).meta_epoch(), 1u) << p;
  }
}

// --- first takeover fences a still-running deposed Leader ---------------------

TEST(RegroupTest, FirstTakeoverFencesStillRunningDeposedLeader) {
  // The adversarial shape epoch fencing exists for: the Leader's node is
  // fully partitioned from the other servers (alive, but silent and
  // unreachable from their side), AND the direct stale-view notification
  // plus the migration order are lost — so the deposed Leader keeps running
  // with its pre-takeover view and never learns it was removed. Because
  // quorum views bootstrap at epoch 1, everything it stamps is nonzero and
  // falls below the epoch-2 fence of the FIRST takeover.
  KernelHarness h(quad_spec(), quorum_params());
  LeaderInvariantMonitor monitor(h.kernel);
  h.run_s(5.0);

  const net::PartitionId p0{0};
  const net::NodeId leader_node = h.cluster.server_node(p0);
  const net::NodeId princess_node = h.cluster.server_node(net::PartitionId{1});
  faults::Scenario s;
  // Leader's server is cut off from every other server, both directions.
  for (std::uint32_t p = 1; p < 4; ++p) {
    const net::NodeId other = h.cluster.server_node(net::PartitionId{p});
    s.partition_asymmetric(leader_node, other);
    s.partition_asymmetric(other, leader_node);
  }
  // The takeover's migration order to partition 0's backups is lost too, so
  // the old GSD instance survives as a genuine still-running deposed Leader.
  for (net::NodeId backup : h.cluster.backup_nodes(p0)) {
    s.partition_asymmetric(princess_node, backup);
  }
  h.play(s, 25.0);

  // The quorum deposed the Leader (epoch 1 -> 2) and fenced the cluster;
  // the deposed Leader is still alive, still believes it leads, and still
  // stamps the pre-takeover epoch 1 — never the legacy always-admitted 0.
  auto& old_leader = h.kernel.gsd(p0);
  auto& new_leader = h.kernel.gsd(net::PartitionId{1});
  ASSERT_TRUE(old_leader.alive());
  EXPECT_TRUE(old_leader.is_leader());
  EXPECT_EQ(old_leader.meta_epoch(), 1u);
  EXPECT_TRUE(new_leader.is_leader());
  EXPECT_EQ(new_leader.meta_epoch(), 2u);
  EXPECT_EQ(new_leader.view().members.size(), 3u);
  EXPECT_EQ(monitor.violations(), 0u);  // different epochs: fenced, not split

  // The fence reached partition 0's compute nodes (their links are clean).
  const net::NodeId compute = h.cluster.compute_nodes(p0).front();
  ASSERT_EQ(h.kernel.ppm(compute).witnessed_epoch(), 2u);

  // Now the deposed Leader acts on its stale authority: its WD on a compute
  // node dies, it diagnoses the process failure (those links still work),
  // and orders a restart stamped with epoch 1. The fenced PPM must refuse.
  h.injector.kill_daemon(h.kernel.watch_daemon(compute));
  h.run_s(15.0);

  EXPECT_GE(h.kernel.ppm(compute).counters().fenced_rejections, 1u);
  EXPECT_FALSE(h.kernel.watch_daemon(compute).alive());  // not resurrected
  EXPECT_TRUE(old_leader.is_leader());  // still ignorant of its deposition
  EXPECT_EQ(old_leader.meta_epoch(), 1u);
  EXPECT_EQ(monitor.violations(), 0u);
}

// --- epoch fencing ------------------------------------------------------------

class FencingTest : public ::testing::Test {
 protected:
  FencingTest()
      : h(small_cluster_spec(), fast_ft_params()),
        client(h.cluster, net::NodeId{3}) {
    h.run_s(3.0);
  }

  net::Address ppm_addr(net::NodeId node) {
    return {node, port_of(ServiceKind::kProcessManager)};
  }

  void raise_watermark(net::Address to, std::uint64_t epoch) {
    auto fence = std::make_shared<EpochFenceMsg>();
    fence->epoch = epoch;
    client.send_any(to, std::move(fence));
    h.run_s(0.5);
  }

  KernelHarness h;
  TestClient client;
};

TEST_F(FencingTest, StaleStartServiceIsRejectedWithFencedReply) {
  const net::NodeId server = h.cluster.server_node(net::PartitionId{0});
  raise_watermark(ppm_addr(server), 5);
  ASSERT_EQ(h.kernel.ppm(server).witnessed_epoch(), 5u);

  auto stale = std::make_shared<StartServiceMsg>();
  stale->kind = ServiceKind::kEventService;
  stale->partition = net::PartitionId{0};
  stale->reply_to = client.address();
  stale->request_id = 9;
  stale->epoch = 3;  // predates the watermark: a deposed member knocking
  client.send_any(ppm_addr(server), std::move(stale));
  h.run_s(1.0);

  const auto* reply = client.last_of_type<StartServiceReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->fenced);
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(h.kernel.ppm(server).counters().fenced_rejections, 1u);
}

TEST_F(FencingTest, CurrentEpochStartServicePasses) {
  const net::NodeId server = h.cluster.server_node(net::PartitionId{0});
  raise_watermark(ppm_addr(server), 5);
  h.injector.kill_daemon(h.kernel.event_service(net::PartitionId{0}));

  auto fresh = std::make_shared<StartServiceMsg>();
  fresh->kind = ServiceKind::kEventService;
  fresh->partition = net::PartitionId{0};
  fresh->reply_to = client.address();
  fresh->request_id = 10;
  fresh->epoch = 5;
  client.send_any(ppm_addr(server), std::move(fresh));
  h.run_s(2.0);

  const auto* reply = client.last_of_type<StartServiceReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->fenced);
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(h.kernel.ppm(server).counters().fenced_rejections, 0u);
}

TEST_F(FencingTest, StaleCheckpointSaveIsDroppedSilently) {
  const net::PartitionId p0{0};
  const net::Address cs{h.cluster.server_node(p0),
                        port_of(ServiceKind::kCheckpointService)};
  raise_watermark(cs, 4);

  auto stale = std::make_shared<CheckpointSaveMsg>();
  stale->service = "gsd/0";
  stale->key = "meta_view";
  stale->data = "stale";
  stale->reply_to = client.address();
  stale->request_id = 21;
  stale->epoch = 2;  // a deposed GSD trying to clobber its successor's view
  client.send_any(cs, std::move(stale));
  h.run_s(1.0);

  EXPECT_EQ(client.of_type<CheckpointSaveReplyMsg>().size(), 0u);
  EXPECT_EQ(h.kernel.checkpoint_service(p0).counters().fenced_rejections, 1u);

  auto current = std::make_shared<CheckpointSaveMsg>();
  current->service = "gsd/0";
  current->key = "meta_view";
  current->data = "current";
  current->reply_to = client.address();
  current->request_id = 22;
  current->epoch = 4;
  client.send_any(cs, std::move(current));
  h.run_s(1.0);

  const auto* reply = client.last_of_type<CheckpointSaveReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->request_id, 22u);
}

TEST_F(FencingTest, PaperPolicyNeverRaisesAnyWatermark) {
  // Default (unilateral) runs leave every runtime's witnessed epoch at 0,
  // even across a real takeover — fencing is inert unless quorum is on.
  h.injector.crash_node(h.cluster.server_node(net::PartitionId{0}));
  h.run_s(20.0);
  for (std::uint32_t n = 0; n < h.cluster.nodes().size(); ++n) {
    if (!h.cluster.node(net::NodeId{n}).alive()) continue;
    EXPECT_EQ(h.kernel.ppm(net::NodeId{n}).witnessed_epoch(), 0u) << n;
  }
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{1}).meta_epoch(), 0u);
}

// --- scenario journal ---------------------------------------------------------

TEST(ScenarioTest, StepsJournalThroughInjectorAtScriptedOffsets) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(1.0);
  const sim::SimTime base = h.cluster.now();

  faults::Scenario s;
  s.slow_node(net::NodeId{2}, 50 * sim::kMillisecond)
      .after(2 * sim::kSecond)
      .partition_asymmetric(net::NodeId{2}, net::NodeId{7})
      .after(1 * sim::kSecond)
      .heal_asymmetric(net::NodeId{2}, net::NodeId{7})
      .restore_node_speed(net::NodeId{2});
  EXPECT_EQ(s.step_count(), 4u);
  EXPECT_EQ(s.duration(), 3 * sim::kSecond);
  h.play(s, 1.0);

  const auto& journal = h.injector.history();
  ASSERT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal[0].at, base);
  EXPECT_NE(journal[0].what.find("slow node 2"), std::string::npos);
  EXPECT_EQ(journal[1].at, base + 2 * sim::kSecond);
  EXPECT_NE(journal[1].what.find("block link 2 -> 7"), std::string::npos);
  EXPECT_EQ(journal[2].at, base + 3 * sim::kSecond);
  EXPECT_NE(journal[2].what.find("unblock link 2 -> 7"), std::string::npos);
  EXPECT_EQ(journal[3].at, base + 3 * sim::kSecond);
}

// --- twin harness: paper() preset is the default ------------------------------

TEST(RegroupTest, PaperPresetReproducesDefaultTakeoverTimingsExactly) {
  kernel::FtParams defaults = fast_ft_params();
  kernel::FtParams preset = fast_ft_params();
  preset.failover = FtParams::FailoverPolicy::paper();

  auto run_one = [](const kernel::FtParams& params) {
    KernelHarness h(quad_spec(), params);
    h.run_s(5.0);
    h.kernel.fault_log().clear();
    h.injector.crash_node(h.cluster.server_node(net::PartitionId{0}));
    h.run_s(40.0);
    return h.kernel.fault_log().records();
  };

  const auto a = run_one(defaults);
  const auto b = run_one(preset);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].component, b[i].component) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].detected_at, b[i].detected_at) << i;
    EXPECT_EQ(a[i].diagnosed_at, b[i].diagnosed_at) << i;
    EXPECT_EQ(a[i].recovered_at, b[i].recovered_at) << i;
    EXPECT_EQ(a[i].recovered, b[i].recovered) << i;
  }
}

}  // namespace
}  // namespace phoenix::kernel
