// Event service tests: subscribe/publish/notify, type and attribute
// filtering, federation-wide delivery, registry replication, checkpoint
// recovery after restart.
#include "kernel/event/event_service.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class EventTest : public ::testing::Test {
 protected:
  EventTest() : h(small_cluster_spec(), fast_ft_params()) { h.run_s(1.0); }

  EventService& es(std::uint32_t p) {
    return h.kernel.event_service(net::PartitionId{p});
  }

  void subscribe(TestClient& client, std::vector<std::string> types,
                 std::uint32_t partition = 0,
                 std::vector<std::pair<std::string, std::string>> filters = {}) {
    auto msg = std::make_shared<EsSubscribeMsg>();
    msg->subscription.consumer = client.address();
    msg->subscription.types = std::move(types);
    msg->subscription.attr_filters = std::move(filters);
    client.send_any(es(partition).address(), msg);
    h.run_s(1.0);
  }

  void publish(std::uint32_t partition, Event event) {
    auto msg = std::make_shared<EsPublishMsg>();
    msg->event = std::move(event);
    // Publish through the message interface from a throwaway origin.
    es(partition).publish_local(msg->event);
    h.run_s(1.0);
  }

  KernelHarness h;
};

TEST_F(EventTest, SubscribeAndReceive) {
  TestClient client(h.cluster, net::NodeId{2});
  subscribe(client, {"custom.type"});
  Event e;
  e.type = "custom.type";
  publish(0, e);
  const auto notifications = client.of_type<EsNotifyMsg>();
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0]->event.type, "custom.type");
  EXPECT_GT(notifications[0]->event.seq, 0u);
}

TEST_F(EventTest, TypeFilterExcludesOtherTypes) {
  TestClient client(h.cluster, net::NodeId{2});
  subscribe(client, {"wanted"});
  Event e;
  e.type = "unwanted";
  publish(0, e);
  EXPECT_EQ(client.of_type<EsNotifyMsg>().size(), 0u);
}

TEST_F(EventTest, EmptyTypeListMeansAllTypes) {
  TestClient client(h.cluster, net::NodeId{2});
  subscribe(client, {});
  Event a, b;
  a.type = "one";
  b.type = "two";
  publish(0, a);
  publish(0, b);
  EXPECT_EQ(client.of_type<EsNotifyMsg>().size(), 2u);
}

TEST_F(EventTest, AttributeFiltering) {
  TestClient client(h.cluster, net::NodeId{2});
  subscribe(client, {"app.exited"}, 0, {{"owner", "alice"}});
  Event alice, bob;
  alice.type = "app.exited";
  alice.attrs = {{"owner", "alice"}};
  bob.type = "app.exited";
  bob.attrs = {{"owner", "bob"}};
  publish(0, alice);
  publish(0, bob);
  const auto notifications = client.of_type<EsNotifyMsg>();
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_EQ(notifications[0]->event.attr("owner"), "alice");
}

TEST_F(EventTest, FederationDeliversFromAnyInstance) {
  // Register at partition 0's instance; publish at partition 1's.
  TestClient client(h.cluster, net::NodeId{2});
  subscribe(client, {"cross.partition"});
  h.run_s(1.0);  // registry sync reaches the peer
  Event e;
  e.type = "cross.partition";
  publish(1, e);
  ASSERT_EQ(client.of_type<EsNotifyMsg>().size(), 1u);
}

TEST_F(EventTest, UnsubscribeStopsDelivery) {
  TestClient client(h.cluster, net::NodeId{2});
  subscribe(client, {"t"});
  auto un = std::make_shared<EsSubscribeMsg>();
  un->subscription.consumer = client.address();
  un->remove = true;
  client.send_any(es(0).address(), un);
  h.run_s(1.0);
  Event e;
  e.type = "t";
  publish(0, e);
  publish(1, e);  // the removal replicated across the federation too
  EXPECT_EQ(client.of_type<EsNotifyMsg>().size(), 0u);
}

TEST_F(EventTest, SequenceNumbersMonotonicPerOrigin) {
  TestClient client(h.cluster, net::NodeId{2});
  subscribe(client, {"seq"});
  for (int i = 0; i < 3; ++i) {
    Event e;
    e.type = "seq";
    publish(0, e);
  }
  const auto notifications = client.of_type<EsNotifyMsg>();
  ASSERT_EQ(notifications.size(), 3u);
  EXPECT_LT(notifications[0]->event.seq, notifications[1]->event.seq);
  EXPECT_LT(notifications[1]->event.seq, notifications[2]->event.seq);
  EXPECT_EQ(notifications[0]->event.origin_es, 0u);
}

TEST_F(EventTest, RegistrySerializationRoundTrip) {
  Subscription sub;
  sub.consumer = {net::NodeId{3}, net::PortId{14}};
  sub.types = {"a", "b"};
  sub.attr_filters = {{"k", "v"}, {"x", "y"}};
  es(0).subscribe_local(sub, /*replicate=*/false);

  const std::string data = es(0).serialize_registry();
  EventService& other = es(1);
  other.restore_registry(data);
  EXPECT_EQ(other.subscription_count(), 1u);

  // The restored subscription still filters correctly.
  Event match;
  match.type = "a";
  match.attrs = {{"k", "v"}, {"x", "y"}};
  Event miss = match;
  miss.attrs = {{"k", "v"}};
  // Direct predicate check through the Subscription model:
  Subscription restored;
  restored.types = sub.types;
  restored.attr_filters = sub.attr_filters;
  EXPECT_TRUE(restored.matches(match));
  EXPECT_FALSE(restored.matches(miss));
}

TEST_F(EventTest, RestartRecoversSubscriptionsFromCheckpoint) {
  TestClient client(h.cluster, net::NodeId{2});
  subscribe(client, {"survivor"});
  h.run_s(1.0);  // registry checkpointed

  // Kill and restart the instance WITHOUT re-subscribing.
  es(0).kill();
  es(0).start();
  h.run_s(5.0);  // checkpoint load completes

  Event e;
  e.type = "survivor";
  publish(0, e);
  EXPECT_EQ(client.of_type<EsNotifyMsg>().size(), 1u)
      << "a recovered ES must keep notifying without re-registration";
}

TEST_F(EventTest, SupplierRegistrationBookkeeping) {
  TestClient supplier(h.cluster, net::NodeId{3});
  auto reg = std::make_shared<EsRegisterSupplierMsg>();
  reg->supplier = supplier.address();
  reg->types = {"telemetry"};
  supplier.send_any(es(0).address(), reg);
  h.run_s(1.0);
  // Unregister must not crash or affect consumers.
  auto unreg = std::make_shared<EsRegisterSupplierMsg>();
  unreg->supplier = supplier.address();
  unreg->remove = true;
  supplier.send_any(es(0).address(), unreg);
  h.run_s(1.0);
}

TEST_F(EventTest, EventAttrLookup) {
  Event e;
  e.attrs = {{"a", "1"}, {"b", "2"}};
  EXPECT_EQ(e.attr("a"), "1");
  EXPECT_EQ(e.attr("b"), "2");
  EXPECT_EQ(e.attr("c"), "");
}

TEST_F(EventTest, DeadConsumerDoesNotBlockOthers) {
  TestClient alive_client(h.cluster, net::NodeId{2});
  TestClient doomed(h.cluster, net::NodeId{3});
  subscribe(alive_client, {"t"});
  subscribe(doomed, {"t"});
  doomed.kill();
  Event e;
  e.type = "t";
  publish(0, e);
  EXPECT_EQ(alive_client.of_type<EsNotifyMsg>().size(), 1u);
  EXPECT_EQ(doomed.of_type<EsNotifyMsg>().size(), 0u);
}

}  // namespace
}  // namespace phoenix::kernel
