// PWS priority and walltime-limit tests.
#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "pws/pws.h"

namespace phoenix::pws {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

PwsConfig pool_of_everything(const cluster::Cluster& cluster,
                             SchedPolicy policy = SchedPolicy::kFifo) {
  PwsConfig config;
  PoolConfig pool;
  pool.name = "batch";
  pool.policy = policy;
  for (std::uint32_t p = 0; p < cluster.spec().partitions; ++p) {
    for (net::NodeId n : cluster.compute_nodes(net::PartitionId{p})) {
      pool.nodes.push_back(n);
    }
  }
  config.pools = {pool};
  return config;
}

SubmitRequest req(unsigned nodes, double seconds, int priority = 0,
                  double walltime_s = 0) {
  SubmitRequest r;
  r.user = "u";
  r.pool = "batch";
  r.nodes = nodes;
  r.duration = sim::from_seconds(seconds);
  r.priority = priority;
  r.walltime_limit = sim::from_seconds(walltime_s);
  return r;
}

class PwsPriorityTest : public ::testing::Test {
 protected:
  PwsPriorityTest()
      : h(small_cluster_spec(), fast_ft_params()),
        pws(h.kernel, pool_of_everything(h.cluster)) {
    h.run_s(1.0);
  }

  KernelHarness h;
  PwsSystem pws;
};

TEST_F(PwsPriorityTest, HigherPriorityJumpsTheQueue) {
  const JobId blocker = pws.submit(req(8, 30.0));   // submitted first
  const JobId normal = pws.submit(req(8, 30.0, 0));
  const JobId urgent = pws.submit(req(8, 30.0, 10));
  h.run_s(4.0);
  // All three were queued together; the urgent one must be picked first,
  // ahead of two earlier submissions.
  EXPECT_EQ(pws.scheduler().job(urgent)->state, JobState::kRunning);
  EXPECT_EQ(pws.scheduler().job(blocker)->state, JobState::kQueued);
  EXPECT_EQ(pws.scheduler().job(normal)->state, JobState::kQueued);
}

TEST_F(PwsPriorityTest, EqualPriorityKeepsFifoOrder) {
  const JobId first = pws.submit(req(8, 30.0, 3));
  const JobId second = pws.submit(req(8, 30.0, 3));
  h.run_s(4.0);
  EXPECT_EQ(pws.scheduler().job(first)->state, JobState::kRunning);
  EXPECT_EQ(pws.scheduler().job(second)->state, JobState::kQueued);
}

TEST_F(PwsPriorityTest, PriorityComposesWithSjf) {
  KernelHarness h2(small_cluster_spec(), fast_ft_params());
  PwsSystem pws2(h2.kernel, pool_of_everything(h2.cluster, SchedPolicy::kSjf));
  h2.run_s(1.0);
  pws2.submit(req(8, 10.0));
  const JobId long_urgent = pws2.scheduler().submit(req(8, 100.0, 5));
  const JobId short_normal = pws2.scheduler().submit(req(8, 5.0, 0));
  h2.run_s(13.0);
  // Priority dominates SJF: the long urgent job runs first.
  EXPECT_EQ(pws2.scheduler().job(long_urgent)->state, JobState::kRunning);
  EXPECT_EQ(pws2.scheduler().job(short_normal)->state, JobState::kQueued);
}

TEST_F(PwsPriorityTest, WalltimeExceededKillsJob) {
  const JobId runaway = pws.submit(req(2, 600.0, 0, /*walltime_s=*/5.0));
  h.run_s(3.0);
  ASSERT_EQ(pws.scheduler().job(runaway)->state, JobState::kRunning);
  h.run_s(6.0);
  const Job* job = pws.scheduler().job(runaway);
  EXPECT_EQ(job->state, JobState::kTimedOut);
  EXPECT_EQ(pws.scheduler().stats().timed_out, 1u);
  // Its processes are really gone and its nodes free for others.
  for (const auto& [node_value, pid] : job->pids) {
    const auto* info = h.cluster.node(net::NodeId{node_value}).find_process(pid);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->state, cluster::ProcessState::kKilled);
  }
  const JobId next = pws.submit(req(8, 30.0));
  h.run_s(3.0);
  EXPECT_EQ(pws.scheduler().job(next)->state, JobState::kRunning);
}

TEST_F(PwsPriorityTest, WalltimeGenerousEnoughDoesNotFire) {
  const JobId fine = pws.submit(req(2, 4.0, 0, /*walltime_s=*/60.0));
  h.run_s(10.0);
  EXPECT_EQ(pws.scheduler().job(fine)->state, JobState::kCompleted);
  EXPECT_EQ(pws.scheduler().stats().timed_out, 0u);
}

TEST_F(PwsPriorityTest, PriorityAndWalltimeSurviveCheckpointRestart) {
  const JobId queued = pws.submit(req(8, 60.0, 7, 120.0));
  pws.submit(req(8, 60.0));  // occupies the pool? no — queued first by priority
  h.run_s(3.0);
  h.injector.kill_daemon(pws.scheduler());
  h.run_s(12.0);
  ASSERT_TRUE(pws.scheduler().alive());
  const Job* job = pws.scheduler().job(queued);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->priority, 7);
  EXPECT_EQ(job->walltime_limit, sim::from_seconds(120.0));
}

}  // namespace
}  // namespace phoenix::pws
