// Unit tests for the network fabric: interface state, delivery, latency,
// traffic accounting, multi-network semantics.
#include "net/fabric.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace phoenix::net {
namespace {

struct PingMsg final : Message {
  std::string_view type() const noexcept override { return "test.ping"; }
  std::size_t wire_size() const noexcept override { return 100; }
};

struct BigMsg final : Message {
  std::string_view type() const noexcept override { return "test.big"; }
  std::size_t wire_size() const noexcept override { return 1 << 20; }
};

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : engine_(1), fabric_(engine_, 4, 3) {
    fabric_.set_delivery_handler([this](const Envelope& env) {
      delivered_.push_back(env);
    });
  }

  Address addr(std::uint32_t node, std::uint16_t port = 1) {
    return {NodeId{node}, PortId{port}};
  }

  sim::Engine engine_;
  Fabric fabric_;
  std::vector<Envelope> delivered_;
};

TEST_F(FabricTest, DeliversWhenPathUp) {
  EXPECT_TRUE(fabric_.send(addr(0), addr(1), NetworkId{0},
                           std::make_shared<PingMsg>()));
  engine_.run();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].from.node.value, 0u);
  EXPECT_EQ(delivered_[0].to.node.value, 1u);
  EXPECT_EQ(delivered_[0].message->type(), "test.ping");
}

TEST_F(FabricTest, DeliveryTakesNonzeroLatency) {
  fabric_.send(addr(0), addr(1), NetworkId{0}, std::make_shared<PingMsg>());
  EXPECT_TRUE(delivered_.empty());  // nothing delivered synchronously
  engine_.run();
  EXPECT_EQ(delivered_.size(), 1u);
  EXPECT_GT(engine_.now(), 0u);
}

TEST_F(FabricTest, SenderInterfaceDownBlocksSend) {
  fabric_.set_interface_up(NodeId{0}, NetworkId{0}, false);
  EXPECT_FALSE(fabric_.send(addr(0), addr(1), NetworkId{0},
                            std::make_shared<PingMsg>()));
  engine_.run();
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(fabric_.stats(NetworkId{0}).messages_dropped, 1u);
}

TEST_F(FabricTest, ReceiverInterfaceDownBlocksSend) {
  fabric_.set_interface_up(NodeId{1}, NetworkId{0}, false);
  EXPECT_FALSE(fabric_.send(addr(0), addr(1), NetworkId{0},
                            std::make_shared<PingMsg>()));
  engine_.run();
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(FabricTest, OtherNetworksUnaffectedByOneCut) {
  fabric_.set_interface_up(NodeId{1}, NetworkId{0}, false);
  EXPECT_TRUE(fabric_.send(addr(0), addr(1), NetworkId{1},
                           std::make_shared<PingMsg>()));
  EXPECT_TRUE(fabric_.send(addr(0), addr(1), NetworkId{2},
                           std::make_shared<PingMsg>()));
  engine_.run();
  EXPECT_EQ(delivered_.size(), 2u);
}

TEST_F(FabricTest, InterfaceCutWhileInFlightDropsAtDelivery) {
  fabric_.send(addr(0), addr(1), NetworkId{0}, std::make_shared<PingMsg>());
  fabric_.set_interface_up(NodeId{1}, NetworkId{0}, false);
  engine_.run();
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(fabric_.stats(NetworkId{0}).messages_dropped, 1u);
}

TEST_F(FabricTest, DeadNodePredicateBlocksDelivery) {
  bool node1_alive = true;
  fabric_.set_node_alive_predicate(
      [&](NodeId n) { return n.value != 1 || node1_alive; });
  fabric_.send(addr(0), addr(1), NetworkId{0}, std::make_shared<PingMsg>());
  node1_alive = false;
  engine_.run();
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(FabricTest, SendAnyPrefersFirstUpNetwork) {
  const NetworkId used =
      fabric_.send_any(addr(0), addr(1), std::make_shared<PingMsg>());
  EXPECT_EQ(used.value, 0);
  fabric_.set_interface_up(NodeId{0}, NetworkId{0}, false);
  const NetworkId fallback =
      fabric_.send_any(addr(0), addr(1), std::make_shared<PingMsg>());
  EXPECT_EQ(fallback.value, 1);
}

TEST_F(FabricTest, SendAnyFailsWhenAllNetworksDown) {
  fabric_.set_node_links_up(NodeId{1}, false);
  const NetworkId used =
      fabric_.send_any(addr(0), addr(1), std::make_shared<PingMsg>());
  EXPECT_FALSE(used.valid());
}

TEST_F(FabricTest, AnyPathReflectsInterfaceState) {
  EXPECT_TRUE(fabric_.any_path(NodeId{0}, NodeId{1}));
  fabric_.set_interface_up(NodeId{0}, NetworkId{0}, false);
  fabric_.set_interface_up(NodeId{1}, NetworkId{1}, false);
  EXPECT_TRUE(fabric_.any_path(NodeId{0}, NodeId{1}));  // network 2 remains
  fabric_.set_interface_up(NodeId{0}, NetworkId{2}, false);
  EXPECT_FALSE(fabric_.any_path(NodeId{0}, NodeId{1}));
}

TEST_F(FabricTest, StatsAccumulateBytesAndTypes) {
  fabric_.send(addr(0), addr(1), NetworkId{0}, std::make_shared<PingMsg>());
  fabric_.send(addr(0), addr(2), NetworkId{0}, std::make_shared<PingMsg>());
  engine_.run();
  const auto& st = fabric_.stats(NetworkId{0});
  EXPECT_EQ(st.messages_sent, 2u);
  EXPECT_EQ(st.bytes_sent, 2 * (kWireHeaderBytes + 100));
  EXPECT_EQ(st.bytes_by_type.at("test.ping"), 2 * (kWireHeaderBytes + 100));
}

TEST_F(FabricTest, TotalStatsSumAcrossNetworks) {
  fabric_.send(addr(0), addr(1), NetworkId{0}, std::make_shared<PingMsg>());
  fabric_.send(addr(0), addr(1), NetworkId{1}, std::make_shared<PingMsg>());
  engine_.run();
  const auto total = fabric_.total_stats();
  EXPECT_EQ(total.messages_sent, 2u);
  EXPECT_EQ(total.bytes_sent, 2 * (kWireHeaderBytes + 100));
}

TEST_F(FabricTest, ResetStatsClears) {
  fabric_.send(addr(0), addr(1), NetworkId{0}, std::make_shared<PingMsg>());
  engine_.run();
  fabric_.reset_stats();
  EXPECT_EQ(fabric_.total_stats().messages_sent, 0u);
}

TEST_F(FabricTest, BiggerMessagesTakeLonger) {
  sim::SimTime small_done = 0, big_done = 0;
  fabric_.set_delivery_handler([&](const Envelope& env) {
    if (env.message->type() == "test.ping") small_done = engine_.now();
    if (env.message->type() == "test.big") big_done = engine_.now();
  });
  fabric_.send(addr(0), addr(1), NetworkId{0}, std::make_shared<PingMsg>());
  fabric_.send(addr(0), addr(1), NetworkId{1}, std::make_shared<BigMsg>());
  engine_.run();
  EXPECT_GT(big_done, small_done);
}

TEST_F(FabricTest, LoopbackSameNodeWorks) {
  EXPECT_TRUE(fabric_.send(addr(0, 1), addr(0, 2), NetworkId{0},
                           std::make_shared<PingMsg>()));
  engine_.run();
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST(FabricTopologyTest, CrossGroupTrafficPaysExtraLatency) {
  sim::Engine engine(7);
  Fabric fabric(engine, 8, 1);
  fabric.set_group_size(4);  // nodes 0-3 vs 4-7
  fabric.latency_model().jitter_frac = 0.0;
  fabric.latency_model().cross_group_extra = 500;

  sim::SimTime local_at = 0, cross_at = 0;
  fabric.set_delivery_handler([&](const Envelope& env) {
    if (env.to.node.value == 1) local_at = engine.now();
    if (env.to.node.value == 5) cross_at = engine.now();
  });
  fabric.send({NodeId{0}, PortId{1}}, {NodeId{1}, PortId{1}}, NetworkId{0},
              std::make_shared<PingMsg>());
  fabric.send({NodeId{0}, PortId{1}}, {NodeId{5}, PortId{1}}, NetworkId{0},
              std::make_shared<PingMsg>());
  engine.run();
  EXPECT_EQ(cross_at - local_at, 500u);
}

TEST(FabricTopologyTest, FlatTopologyByDefault) {
  sim::Engine engine(7);
  Fabric fabric(engine, 8, 1);
  fabric.latency_model().jitter_frac = 0.0;
  sim::SimTime a = 0, b = 0;
  fabric.set_delivery_handler([&](const Envelope& env) {
    if (env.to.node.value == 1) a = engine.now();
    if (env.to.node.value == 7) b = engine.now();
  });
  fabric.send({NodeId{0}, PortId{1}}, {NodeId{1}, PortId{1}}, NetworkId{0},
              std::make_shared<PingMsg>());
  fabric.send({NodeId{0}, PortId{1}}, {NodeId{7}, PortId{1}}, NetworkId{0},
              std::make_shared<PingMsg>());
  engine.run();
  EXPECT_EQ(a, b);  // no grouping: identical deterministic latency
}

TEST(FabricLossTest, LostMessagesCountedNotDelivered) {
  sim::Engine engine(11);
  Fabric fabric(engine, 2, 1);
  fabric.latency_model().loss_probability = 1.0;  // everything vanishes
  std::size_t delivered = 0;
  fabric.set_delivery_handler([&](const Envelope&) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(fabric.send({NodeId{0}, PortId{1}}, {NodeId{1}, PortId{1}},
                            NetworkId{0}, std::make_shared<PingMsg>()));
  }
  engine.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(fabric.stats(NetworkId{0}).messages_lost, 10u);
  EXPECT_EQ(fabric.stats(NetworkId{0}).messages_sent, 10u);  // sender can't tell
}

TEST(LatencyModelTest, MinimumOneMicrosecond) {
  sim::Rng rng(1);
  LatencyModel model;
  model.base = 0;
  model.per_byte_us = 0.0;
  model.jitter_frac = 0.0;
  EXPECT_EQ(model.sample(0, rng), 1u);
}

TEST(LatencyModelTest, JitterBounded) {
  sim::Rng rng(2);
  LatencyModel model;
  model.base = 100;
  model.per_byte_us = 0.0;
  model.jitter_frac = 0.2;
  for (int i = 0; i < 1000; ++i) {
    const auto lat = model.sample(0, rng);
    EXPECT_GE(lat, 80u);
    EXPECT_LE(lat, 120u);
  }
}

TEST(IdsTest, StrongIdsCompareAndHash) {
  EXPECT_EQ(NodeId{3}, NodeId{3});
  EXPECT_NE(NodeId{3}, NodeId{4});
  EXPECT_LT(NodeId{3}, NodeId{4});
  EXPECT_FALSE(NodeId{}.valid());
  EXPECT_TRUE(NodeId{0}.valid());

  Address a{NodeId{1}, PortId{2}};
  Address b{NodeId{1}, PortId{2}};
  Address c{NodeId{1}, PortId{3}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<Address>{}(a), std::hash<Address>{}(b));
}

TEST(FabricConstructionTest, ZeroNetworksRejected) {
  sim::Engine engine;
  EXPECT_THROW(Fabric(engine, 2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace phoenix::net
