// Parameter-sweep property tests over the FtParams knobs: diagnosis time
// must equal its protocol formula, network-miss tolerance must scale, and
// the bulletin federation must stay complete at any partition count.
#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;

// --- node-diagnosis time = attempts x timeout --------------------------------

class ProbeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ProbeSweepTest, NodeDiagnosisMatchesProbeBudget) {
  const int attempts = GetParam();
  cluster::ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 3;
  spec.backups_per_partition = 1;
  FtParams params;
  params.heartbeat_interval = 2 * sim::kSecond;
  params.node_probe_attempts = attempts;
  params.node_probe_timeout = 400 * sim::kMillisecond;
  KernelHarness h(spec, params);
  h.run_s(5.0);
  h.kernel.fault_log().clear();

  h.injector.crash_node(h.cluster.compute_nodes(net::PartitionId{0})[0]);
  h.run_s(20.0);

  const auto record = h.kernel.fault_log().last("WD", FaultKind::kNodeFailure);
  ASSERT_TRUE(record.has_value());
  const double diagnose = sim::to_seconds(record->diagnosed_at - record->detected_at);
  EXPECT_NEAR(diagnose, attempts * 0.4, 0.05) << "attempts=" << attempts;
}

INSTANTIATE_TEST_SUITE_P(Attempts, ProbeSweepTest, ::testing::Values(1, 2, 3, 5));

// --- network_miss_rounds scales single-NIC detection ---------------------------

class MissRoundsTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MissRoundsTest, NetworkDetectionScalesWithMissRounds) {
  const unsigned rounds = GetParam();
  cluster::ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 3;
  spec.backups_per_partition = 1;
  FtParams params;
  params.heartbeat_interval = 2 * sim::kSecond;
  params.network_miss_rounds = rounds;
  KernelHarness h(spec, params);
  h.run_s(5.0);
  h.kernel.fault_log().clear();

  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[1];
  h.run_until_after_heartbeat(victim);
  const sim::SimTime injected =
      h.injector.cut_interface(victim, net::NetworkId{0});
  h.run_s(5.0 * rounds + 10.0);

  const auto record = h.kernel.fault_log().last("WD", FaultKind::kNetworkFailure);
  ASSERT_TRUE(record.has_value());
  const double detect = sim::to_seconds(record->detected_at - injected);
  // Injection right after a heartbeat: detection needs `rounds` more missed
  // rounds beyond the one already sent.
  EXPECT_GE(detect, rounds * 2.0);
  EXPECT_LE(detect, (rounds + 1) * 2.0 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rounds, MissRoundsTest, ::testing::Values(1u, 2u, 4u));

// --- federation completeness at any partition count ------------------------------

class FederationSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FederationSweepTest, BulletinSeesEveryPartitionFromAnyInstance) {
  const std::size_t partitions = GetParam();
  cluster::ClusterSpec spec;
  spec.partitions = partitions;
  spec.computes_per_partition = 2;
  spec.backups_per_partition = 1;
  KernelHarness h(spec, phoenix::testing::fast_ft_params());
  h.run_s(3.0);

  // Every instance's merged cluster view covers every node.
  for (std::size_t p = 0; p < partitions; ++p) {
    phoenix::testing::TestClient client(
        h.cluster, h.cluster.compute_nodes(net::PartitionId{
                       static_cast<std::uint32_t>(p)})[0],
        net::PortId{static_cast<std::uint16_t>(200 + p)});
    auto query = std::make_shared<DbQueryMsg>();
    query->query_id = 10 + p;
    query->cluster_scope = true;
    query->table = BulletinTable::kNodes;
    query->reply_to = client.address();
    client.send_any(
        h.kernel.bulletin(net::PartitionId{static_cast<std::uint32_t>(p)}).address(),
        query);
    h.run_s(2.0);
    const auto* reply = client.last_of_type<DbQueryReplyMsg>();
    ASSERT_NE(reply, nullptr) << "partition " << p;
    EXPECT_EQ(reply->node_rows.size(), h.cluster.node_count()) << "partition " << p;
    EXPECT_EQ(reply->partitions_included, partitions) << "partition " << p;
  }
}

TEST_P(FederationSweepTest, EventRegistryReplicatesEverywhere) {
  const std::size_t partitions = GetParam();
  cluster::ClusterSpec spec;
  spec.partitions = partitions;
  spec.computes_per_partition = 2;
  spec.backups_per_partition = 1;
  KernelHarness h(spec, phoenix::testing::fast_ft_params());
  h.run_s(1.0);

  phoenix::testing::TestClient consumer(
      h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0]);
  Subscription sub;
  sub.consumer = consumer.address();
  sub.types = {"sweep.event"};
  h.kernel.event_service(net::PartitionId{0}).subscribe_local(sub);
  h.run_s(1.0);

  // Publish once at EVERY instance; each publish reaches the consumer once.
  for (std::size_t p = 0; p < partitions; ++p) {
    Event e;
    e.type = "sweep.event";
    h.kernel.event_service(net::PartitionId{static_cast<std::uint32_t>(p)})
        .publish_local(e);
  }
  h.run_s(1.0);
  EXPECT_EQ(consumer.of_type<EsNotifyMsg>().size(), partitions);
}

INSTANTIATE_TEST_SUITE_P(Partitions, FederationSweepTest,
                         ::testing::Values(1u, 2u, 3u, 6u));

}  // namespace
}  // namespace phoenix::kernel
