// Event-service extension tests: wildcard type patterns and history replay.
#include <gtest/gtest.h>

#include "kernel/event/event_service.h"
#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

TEST(TypePatternTest, ExactPrefixAndStar) {
  EXPECT_TRUE(Subscription::type_matches("node.failed", "node.failed"));
  EXPECT_FALSE(Subscription::type_matches("node.failed", "node.recovered"));
  EXPECT_TRUE(Subscription::type_matches("node.*", "node.failed"));
  EXPECT_TRUE(Subscription::type_matches("node.*", "node.recovered"));
  EXPECT_FALSE(Subscription::type_matches("node.*", "network.failed"));
  EXPECT_FALSE(Subscription::type_matches("node.*", "node"));
  EXPECT_TRUE(Subscription::type_matches("*", "anything.at.all"));
}

class EventExtraTest : public ::testing::Test {
 protected:
  EventExtraTest() : h(small_cluster_spec(), fast_ft_params()) { h.run_s(1.0); }

  EventService& es(std::uint32_t p) {
    return h.kernel.event_service(net::PartitionId{p});
  }

  KernelHarness h;
};

TEST_F(EventExtraTest, WildcardSubscriptionSpansTypes) {
  TestClient client(h.cluster, net::NodeId{2});
  Subscription sub;
  sub.consumer = client.address();
  sub.types = {"node.*"};
  es(0).subscribe_local(sub, false);

  for (const char* type : {"node.failed", "node.recovered", "network.failed"}) {
    Event e;
    e.type = type;
    es(0).publish_local(e);
  }
  h.run_s(1.0);
  EXPECT_EQ(client.of_type<EsNotifyMsg>().size(), 2u);
}

TEST_F(EventExtraTest, ReplayDeliversHistoryToLateSubscriber) {
  // Publish history BEFORE the consumer exists.
  for (int i = 0; i < 5; ++i) {
    Event e;
    e.type = "audit.entry";
    e.attrs = {{"index", std::to_string(i)}};
    es(0).publish_local(e);
  }
  h.run_s(1.0);

  TestClient late(h.cluster, net::NodeId{3});
  auto replay = std::make_shared<EsReplayMsg>();
  replay->subscription.consumer = late.address();
  replay->subscription.types = {"audit.entry"};
  late.send_any(es(0).address(), replay);
  h.run_s(1.0);

  const auto got = late.of_type<EsNotifyMsg>();
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got.front()->event.attr("index"), "0");
  EXPECT_EQ(got.back()->event.attr("index"), "4");
}

TEST_F(EventExtraTest, ReplayAfterSeqSkipsOldEvents) {
  std::uint64_t third_seq = 0;
  for (int i = 0; i < 5; ++i) {
    Event e;
    e.type = "audit.entry";
    es(0).publish_local(e);
    if (i == 2) third_seq = es(0).published_count();
  }
  TestClient late(h.cluster, net::NodeId{3});
  auto replay = std::make_shared<EsReplayMsg>();
  replay->subscription.consumer = late.address();
  replay->after_seq = third_seq;
  late.send_any(es(0).address(), replay);
  h.run_s(1.0);
  EXPECT_EQ(late.of_type<EsNotifyMsg>().size(), 2u);
}

TEST_F(EventExtraTest, ReplayHonorsFilters) {
  for (int i = 0; i < 4; ++i) {
    Event e;
    e.type = i % 2 == 0 ? "a.even" : "a.odd";
    es(0).publish_local(e);
  }
  TestClient late(h.cluster, net::NodeId{3});
  auto replay = std::make_shared<EsReplayMsg>();
  replay->subscription.consumer = late.address();
  replay->subscription.types = {"a.odd"};
  late.send_any(es(0).address(), replay);
  h.run_s(1.0);
  EXPECT_EQ(late.of_type<EsNotifyMsg>().size(), 2u);
}

TEST_F(EventExtraTest, HistoryBounded) {
  es(0).set_history_limit(10);
  for (int i = 0; i < 50; ++i) {
    Event e;
    e.type = "flood";
    es(0).publish_local(e);
  }
  EXPECT_EQ(es(0).history_size(), 10u);

  // Replay returns only the retained tail.
  TestClient late(h.cluster, net::NodeId{3});
  auto replay = std::make_shared<EsReplayMsg>();
  replay->subscription.consumer = late.address();
  late.send_any(es(0).address(), replay);
  h.run_s(1.0);
  EXPECT_EQ(late.of_type<EsNotifyMsg>().size(), 10u);
}

TEST_F(EventExtraTest, HistoryDisabledMeansNoReplay) {
  es(0).set_history_limit(0);
  Event e;
  e.type = "gone";
  es(0).publish_local(e);
  TestClient late(h.cluster, net::NodeId{3});
  auto replay = std::make_shared<EsReplayMsg>();
  replay->subscription.consumer = late.address();
  late.send_any(es(0).address(), replay);
  h.run_s(1.0);
  EXPECT_EQ(late.of_type<EsNotifyMsg>().size(), 0u);
}

}  // namespace
}  // namespace phoenix::kernel
