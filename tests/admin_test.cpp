// Admin console tests: status tables, fault analysis, parallel commands,
// drain/undrain, lossy-fabric robustness of the kernel it manages.
#include "admin/admin_console.h"

#include <gtest/gtest.h>

#include "kernel/ppm/process_manager.h"
#include "kernel_fixture.h"

namespace phoenix::admin {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class AdminTest : public ::testing::Test {
 protected:
  AdminTest()
      : h(small_cluster_spec(), fast_ft_params()),
        console(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0],
                h.kernel) {
    h.run_s(3.0);
  }

  KernelHarness h;
  AdminConsole console;
};

TEST_F(AdminTest, NodeStatusesCoverWholeCluster) {
  const auto statuses = console.node_statuses();
  ASSERT_EQ(statuses.size(), h.cluster.node_count());
  std::size_t servers = 0;
  for (const auto& s : statuses) {
    EXPECT_TRUE(s.alive);
    EXPECT_FALSE(s.drained);
    EXPECT_GT(s.running_processes, 0u);  // kernel daemons at least
    if (s.role == cluster::NodeRole::kServer) ++servers;
  }
  EXPECT_EQ(servers, 2u);
}

TEST_F(AdminTest, ServicePlacementsTrackMigration) {
  auto placements = console.service_placements();
  EXPECT_EQ(placements.size(), 4u * 2u);  // 4 kinds x 2 partitions
  for (const auto& p : placements) {
    EXPECT_TRUE(p.alive);
    EXPECT_EQ(p.node, h.cluster.server_node(p.partition));
  }

  // Crash partition 1's server; placements must follow the migration.
  h.injector.crash_node(h.cluster.server_node(net::PartitionId{1}));
  h.run_s(20.0);
  placements = console.service_placements();
  for (const auto& p : placements) {
    if (p.partition == net::PartitionId{1}) {
      EXPECT_EQ(p.node, h.cluster.backup_nodes(net::PartitionId{1})[0]);
      EXPECT_TRUE(p.alive);
    }
  }
}

TEST_F(AdminTest, FaultAnalysisAggregates) {
  h.injector.kill_daemon(h.kernel.watch_daemon(h.cluster.compute_nodes(net::PartitionId{0})[1]));
  h.run_s(10.0);
  h.injector.kill_daemon(h.kernel.event_service(net::PartitionId{1}));
  h.run_s(10.0);

  const FaultAnalysis analysis = console.analyze_faults();
  EXPECT_EQ(analysis.total_faults, 2u);
  EXPECT_EQ(analysis.unrecovered, 0u);
  ASSERT_TRUE(analysis.by_component.contains("WD"));
  ASSERT_TRUE(analysis.by_component.contains("ES"));
  EXPECT_GT(analysis.by_component.at("WD").mean_ttr_s, 0.0);
  EXPECT_LT(analysis.availability, 1.0);
  EXPECT_GT(analysis.availability, 0.5);
}

TEST_F(AdminTest, AvailabilityIsOneWithoutFaults) {
  const FaultAnalysis analysis = console.analyze_faults();
  EXPECT_EQ(analysis.total_faults, 0u);
  EXPECT_DOUBLE_EQ(analysis.availability, 1.0);
}

TEST_F(AdminTest, ParallelCommandAcrossCluster) {
  std::vector<net::NodeId> nodes;
  for (const auto& node : h.cluster.nodes()) nodes.push_back(node.id());
  const CommandResult result = console.run_command("apt-upgrade", nodes, 4);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.succeeded, h.cluster.node_count());
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.elapsed, 0u);
}

TEST_F(AdminTest, ParallelCommandReportsDeadNodes) {
  h.injector.crash_node(h.cluster.compute_nodes(net::PartitionId{1})[2]);
  std::vector<net::NodeId> nodes;
  for (const auto& node : h.cluster.nodes()) nodes.push_back(node.id());
  const CommandResult result = console.run_command("uptime", nodes, 4);
  EXPECT_FALSE(result.timed_out);
  EXPECT_GE(result.failed, 1u);
  EXPECT_EQ(result.succeeded + result.failed, h.cluster.node_count());
}

TEST_F(AdminTest, DrainKillsUserJobsAndFlagsConfig) {
  const net::NodeId target = h.cluster.compute_nodes(net::PartitionId{0})[2];
  const auto pid = h.kernel.ppm(target).spawn_local(
      kernel::ProcessSpec{"userjob", "alice", 1.0, 0, 0});
  h.run_s(1.0);

  EXPECT_TRUE(console.drain_node(target));
  h.run_s(1.0);
  EXPECT_TRUE(console.is_drained(target));
  const auto* info = h.cluster.node(target).find_process(pid);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->state, cluster::ProcessState::kKilled);
  // Kernel daemons keep running.
  EXPECT_TRUE(h.kernel.watch_daemon(target).alive());

  EXPECT_TRUE(console.undrain_node(target));
  EXPECT_FALSE(console.is_drained(target));
  EXPECT_FALSE(console.undrain_node(target));  // already undrained
}

TEST_F(AdminTest, DrainDeadNodeFails) {
  const net::NodeId target = h.cluster.compute_nodes(net::PartitionId{0})[3];
  h.injector.crash_node(target);
  EXPECT_FALSE(console.drain_node(target));
}

TEST_F(AdminTest, StatusScreenRenders) {
  const std::string screen = console.render_status();
  EXPECT_NE(screen.find("administration console"), std::string::npos);
  EXPECT_NE(screen.find("service placement"), std::string::npos);
  EXPECT_NE(screen.find("availability"), std::string::npos);
}

// --- lossy fabric robustness -------------------------------------------------

class LossyFabricTest : public ::testing::TestWithParam<double> {};

TEST_P(LossyFabricTest, NoFalseFailuresUnderPacketLoss) {
  cluster::ClusterSpec spec = small_cluster_spec();
  kernel::FtParams params = fast_ft_params();
  params.network_miss_rounds = 3;  // tolerate lost heartbeat datagrams
  KernelHarness h(spec, params);
  h.cluster.fabric().latency_model().loss_probability = GetParam();
  h.run_s(120.0);  // 60 heartbeat rounds under loss

  // Random loss must not be misdiagnosed as node or process failure: a
  // node-level silence needs ALL THREE networks to lose the same round
  // (p^3), and the PPM probe retries resolve the rest.
  for (const auto& record : h.kernel.fault_log().records()) {
    EXPECT_NE(record.kind, kernel::FaultKind::kNodeFailure)
        << "false node failure at loss " << GetParam();
    EXPECT_NE(record.kind, kernel::FaultKind::kProcessFailure)
        << "false process failure at loss " << GetParam();
  }
  EXPECT_GT(h.cluster.fabric().total_stats().messages_lost, 0u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyFabricTest,
                         ::testing::Values(0.01, 0.05, 0.10));

TEST(LossyFabricDetectionTest, RealFaultsStillDetectedUnderLoss) {
  cluster::ClusterSpec spec = small_cluster_spec();
  kernel::FtParams params = fast_ft_params();
  params.network_miss_rounds = 3;
  KernelHarness h(spec, params);
  h.cluster.fabric().latency_model().loss_probability = 0.05;
  h.run_s(5.0);

  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[1];
  h.injector.crash_node(victim);
  h.run_s(20.0);
  const auto record = h.kernel.fault_log().last("WD", kernel::FaultKind::kNodeFailure);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->node, victim);
}

}  // namespace
}  // namespace phoenix::admin
