// PWS portal tests: the message-level qstat/qdel protocol and the Figure-9
// node start/shutdown controls.
#include "pws/portal.h"

#include "pws/pws.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::pws {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class PortalTest : public ::testing::Test {
 protected:
  PortalTest() : h(small_cluster_spec(), fast_ft_params()) {
    PwsConfig config;
    PoolConfig pool;
    pool.name = "batch";
    for (std::uint32_t p = 0; p < 2; ++p) {
      for (net::NodeId n : h.cluster.compute_nodes(net::PartitionId{p})) {
        pool.nodes.push_back(n);
      }
    }
    config.pools = {pool};
    pws = std::make_unique<PwsSystem>(h.kernel, config);
    portal = std::make_unique<Portal>(
        h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0], h.kernel,
        pws->scheduler().address(), 2 * sim::kSecond);
    portal->start();
    h.run_s(1.0);
  }

  JobId submit(const char* user, unsigned nodes, double seconds) {
    SubmitRequest r;
    r.user = user;
    r.pool = "batch";
    r.nodes = nodes;
    r.duration = sim::from_seconds(seconds);
    return pws->submit(r);
  }

  KernelHarness h;
  std::unique_ptr<PwsSystem> pws;
  std::unique_ptr<Portal> portal;
};

TEST_F(PortalTest, QueryProtocolReturnsJobs) {
  submit("alice", 2, 60.0);
  submit("bob", 1, 60.0);
  h.run_s(3.0);

  TestClient client(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0]);
  auto query = std::make_shared<PwsQueryMsg>();
  query->reply_to = client.address();
  query->request_id = 1;
  client.send_any(pws->scheduler().address(), query);
  h.run_s(1.0);
  const auto* reply = client.last_of_type<PwsQueryReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->jobs.size(), 2u);
}

TEST_F(PortalTest, QueryFiltersByUserAndId) {
  const JobId a = submit("alice", 1, 60.0);
  submit("bob", 1, 60.0);
  h.run_s(2.0);

  TestClient client(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0]);
  auto by_user = std::make_shared<PwsQueryMsg>();
  by_user->user = "alice";
  by_user->reply_to = client.address();
  by_user->request_id = 2;
  client.send_any(pws->scheduler().address(), by_user);
  h.run_s(1.0);
  const auto* reply = client.last_of_type<PwsQueryReplyMsg>();
  ASSERT_NE(reply, nullptr);
  ASSERT_EQ(reply->jobs.size(), 1u);
  EXPECT_EQ(reply->jobs[0].user, "alice");

  auto by_id = std::make_shared<PwsQueryMsg>();
  by_id->job_id = a;
  by_id->reply_to = client.address();
  by_id->request_id = 3;
  client.send_any(pws->scheduler().address(), by_id);
  h.run_s(1.0);
  const auto* id_reply = client.last_of_type<PwsQueryReplyMsg>();
  ASSERT_EQ(id_reply->jobs.size(), 1u);
  EXPECT_EQ(id_reply->jobs[0].id, a);
}

TEST_F(PortalTest, CancelProtocol) {
  const JobId id = submit("alice", 8, 600.0);
  h.run_s(2.0);

  TestClient client(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0]);
  auto cancel = std::make_shared<PwsCancelMsg>();
  cancel->job_id = id;
  cancel->reply_to = client.address();
  cancel->request_id = 4;
  client.send_any(pws->scheduler().address(), cancel);
  h.run_s(1.0);
  const auto* reply = client.last_of_type<PwsCancelReplyMsg>();
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->cancelled);
  EXPECT_TRUE(pws->scheduler().job(id)->terminal());

  // Cancelling again fails.
  auto again = std::make_shared<PwsCancelMsg>();
  again->job_id = id;
  again->reply_to = client.address();
  again->request_id = 5;
  client.send_any(pws->scheduler().address(), again);
  h.run_s(1.0);
  EXPECT_FALSE(client.last_of_type<PwsCancelReplyMsg>()->cancelled);
}

TEST_F(PortalTest, PortalRefreshCollectsJobsAndNodes) {
  submit("alice", 2, 120.0);
  h.run_s(6.0);
  EXPECT_GT(portal->refreshes(), 0u);
  ASSERT_EQ(portal->jobs().size(), 1u);
  EXPECT_EQ(portal->jobs()[0].user, "alice");
  const std::string screen = portal->render();
  EXPECT_NE(screen.find("Phoenix-PWS"), std::string::npos);
  EXPECT_NE(screen.find("alice"), std::string::npos);
  EXPECT_NE(screen.find("Nodes"), std::string::npos);
}

TEST_F(PortalTest, ShutdownNodeRequeuesItsJobs) {
  const JobId id = submit("alice", 2, 600.0);
  h.run_s(3.0);
  const Job* job = pws->scheduler().job(id);
  ASSERT_EQ(job->state, JobState::kRunning);
  const net::NodeId victim = job->allocated[0];

  EXPECT_TRUE(portal->shutdown_node(victim));
  EXPECT_FALSE(portal->shutdown_node(victim));  // already down
  h.run_s(15.0);

  // PWS requeued and restarted the job away from the shut-down node.
  job = pws->scheduler().job(id);
  EXPECT_EQ(job->state, JobState::kRunning);
  for (net::NodeId n : job->allocated) {
    EXPECT_NE(n, victim);
  }

  EXPECT_TRUE(portal->start_node(victim));
  EXPECT_FALSE(portal->start_node(victim));  // already up
  h.run_s(6.0);
  EXPECT_TRUE(h.kernel.watch_daemon(victim).alive());
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{h.cluster.partition_of(victim).value})
                .node_status(victim),
            kernel::GroupServiceDaemon::NodeStatus::kHealthy);
}

TEST_F(PortalTest, InvalidNodeOperationsRejected) {
  EXPECT_FALSE(portal->shutdown_node(net::NodeId{9999}));
  EXPECT_FALSE(portal->start_node(net::NodeId{9999}));
}

}  // namespace
}  // namespace phoenix::pws
