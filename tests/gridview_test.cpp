// GridView tests: single-access-point cluster queries, event subscription,
// dashboard rendering, degraded operation.
#include "gridview/gridview.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "workload/resource_model.h"

namespace phoenix::gridview {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class GridViewTest : public ::testing::Test {
 protected:
  GridViewTest()
      : h(small_cluster_spec(), fast_ft_params()),
        model(h.cluster, workload_params()),
        view(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0], h.kernel,
             2 * sim::kSecond) {
    model.start();
    view.start();
    h.run_s(6.0);  // detectors sample, refreshes happen
  }

  static workload::ResourceModelParams workload_params() {
    workload::ResourceModelParams p;
    p.update_interval = sim::kSecond;
    return p;
  }

  KernelHarness h;
  workload::ResourceModel model;
  GridView view;
};

TEST_F(GridViewTest, RefreshCollectsClusterWideRows) {
  EXPECT_GT(view.refreshes_completed(), 0u);
  EXPECT_EQ(view.last_summary().node_count, h.cluster.node_count());
  EXPECT_EQ(view.last_partitions_included(), 2u);
  EXPECT_GT(view.last_refresh_latency(), 0u);
}

TEST_F(GridViewTest, SummaryTracksResourceModel) {
  const auto& s = view.last_summary();
  EXPECT_GT(s.avg_mem_pct, 20.0);
  EXPECT_LT(s.avg_mem_pct, 80.0);
  EXPECT_GE(s.avg_cpu_pct, 0.0);
  EXPECT_LT(s.avg_swap_pct, 5.0);
}

TEST_F(GridViewTest, ReceivesFailureEventsInRealTime) {
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{1})[1];
  h.injector.crash_node(victim);
  h.run_s(10.0);
  bool saw_failure = false;
  for (const auto& e : view.events()) {
    if (e.type == kernel::event_types::kNodeFailed && e.subject_node == victim) {
      saw_failure = true;
    }
  }
  EXPECT_TRUE(saw_failure);
}

TEST_F(GridViewTest, DegradedWhenOneBulletinDownThenSelfHeals) {
  h.kernel.bulletin(net::PartitionId{1}).kill();
  // Refresh inside the outage window: only partition 0 answers. Keep the
  // observation window shorter than the next periodic refresh, because the
  // GSD restarts the bulletin within its supervision period.
  view.refresh_now();
  h.run_s(0.8);
  EXPECT_EQ(view.last_partitions_included(), 1u);
  EXPECT_EQ(view.last_summary().node_count, 6u);

  // Self-healing: the supervising GSD restarts the instance and detectors
  // repopulate it, so a later refresh is whole again.
  h.run_s(10.0);
  EXPECT_EQ(view.last_partitions_included(), 2u);
  EXPECT_EQ(view.last_summary().node_count, 12u);
}

TEST_F(GridViewTest, DashboardRendersKeyFigures) {
  const std::string dashboard = view.render_dashboard();
  EXPECT_NE(dashboard.find("GridView"), std::string::npos);
  EXPECT_NE(dashboard.find("CPU"), std::string::npos);
  EXPECT_NE(dashboard.find("MEM"), std::string::npos);
  EXPECT_NE(dashboard.find("SWAP"), std::string::npos);
  EXPECT_NE(dashboard.find("nodes:"), std::string::npos);
}

TEST_F(GridViewTest, EventBufferBounded) {
  for (int i = 0; i < 300; ++i) {
    kernel::Event e;
    e.type = std::string(kernel::event_types::kNodeFailed);
    h.kernel.event_service(net::PartitionId{0}).publish_local(e);
  }
  h.run_s(2.0);
  EXPECT_LE(view.events().size(), 256u);
}

}  // namespace
}  // namespace phoenix::gridview
