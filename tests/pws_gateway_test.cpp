// SubmissionGateway tests: window coalescing, weighted fair batch assembly,
// local cancel absorption, token-bucket admission under job spam, batch
// replay idempotency, and the pws.* metrics surfacing in the admin console.
#include "pws/gateway.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "admin/admin_console.h"
#include "kernel_fixture.h"
#include "pws/pws.h"
#include "test_client.h"

namespace phoenix::pws {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

PwsConfig one_pool_config(const cluster::Cluster& cluster) {
  PwsConfig config;
  PoolConfig pool;
  pool.name = "batch";
  pool.policy = SchedPolicy::kFifo;
  for (std::uint32_t p = 0; p < cluster.spec().partitions; ++p) {
    for (net::NodeId n : cluster.compute_nodes(net::PartitionId{p})) {
      pool.nodes.push_back(n);
    }
  }
  config.pools = {pool};
  return config;
}

SubmitRequest req(const std::string& user, unsigned nodes, double seconds) {
  SubmitRequest r;
  r.user = user;
  r.pool = "batch";
  r.nodes = nodes;
  r.duration = sim::from_seconds(seconds);
  return r;
}

/// Harness + scheduler + gateway. `tweak` edits the scheduler config after
/// the pool over all compute nodes is built (the cluster must exist first).
struct GatewayRig {
  using ConfigFn = std::function<void(PwsConfig&)>;

  explicit GatewayRig(ConfigFn tweak = {}, GatewayConfig gw = {})
      : h(small_cluster_spec(), fast_ft_params()),
        pws(h.kernel, make_config(h.cluster, std::move(tweak))) {
    h.run_s(1.0);
    gw.scheduler = pws.scheduler().address();
    gateway = std::make_unique<SubmissionGateway>(
        h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0], gw);
  }

  static PwsConfig make_config(const cluster::Cluster& cluster, ConfigFn tweak) {
    PwsConfig config = one_pool_config(cluster);
    if (tweak) tweak(config);
    return config;
  }

  KernelHarness h;
  PwsSystem pws;
  std::unique_ptr<SubmissionGateway> gateway;
};

TEST(PwsGatewayTest, WindowCoalescesSubmissionsIntoOneBatch) {
  GatewayRig rig;
  for (int i = 0; i < 20; ++i) {
    rig.gateway->submit(req("u" + std::to_string(i), 1, 0.05));
  }
  rig.h.run_s(0.5);

  // All 20 submissions landed in the same 10 ms window: one wire batch.
  EXPECT_EQ(rig.gateway->stats().batches_sent, 1u);
  EXPECT_EQ(rig.gateway->stats().accepted, 20u);
  EXPECT_EQ(rig.gateway->stats().retries, 0u);
  EXPECT_EQ(rig.pws.scheduler().stats().batches, 1u);
  EXPECT_EQ(rig.pws.scheduler().jobs().size(), 20u);
}

TEST(PwsGatewayTest, OversizedWindowSplitsAtMaxBatch) {
  GatewayConfig gw;
  gw.max_batch = 8;
  GatewayRig rig({}, gw);
  for (int i = 0; i < 20; ++i) {
    rig.gateway->submit(req("u" + std::to_string(i), 1, 0.05));
  }
  rig.h.run_s(0.5);

  EXPECT_EQ(rig.gateway->stats().batches_sent, 3u);  // 8 + 8 + 4
  EXPECT_EQ(rig.gateway->stats().accepted, 20u);
  EXPECT_EQ(rig.pws.scheduler().stats().batches, 3u);
}

/// Returns a callback that appends `user` to `order` on an accepted verdict.
/// Within one batch, verdicts arrive in assembly order, so with a single
/// batch on the wire the callback sequence exposes the DRR interleaving.
SubmissionGateway::SubmitCallback track_user(std::vector<std::string>& order,
                                             std::string user) {
  return [&order, user = std::move(user)](SubmissionGateway::Ticket,
                                          const BatchSubmitResult& r) {
    if (r.status == SubmitStatus::kAccepted) order.push_back(user);
  };
}

TEST(PwsGatewayTest, FairAssemblyInterleavesTenantsUnderSpam) {
  GatewayRig rig;
  std::vector<std::string> verdict_order;

  // A spammer floods the window before alice's two jobs arrive. One batch
  // ships (8 <= max_batch), so verdicts replay the assembly order.
  for (int i = 0; i < 6; ++i) {
    rig.gateway->submit(req("spam", 1, 0.05),
                        track_user(verdict_order, "spam"));
  }
  rig.gateway->submit(req("alice", 1, 0.05),
                      track_user(verdict_order, "alice"));
  rig.gateway->submit(req("alice", 1, 0.05),
                      track_user(verdict_order, "alice"));
  rig.h.run_s(1.0);

  ASSERT_EQ(rig.gateway->stats().batches_sent, 1u);
  ASSERT_EQ(verdict_order.size(), 8u);
  // Round-robin: alice drains one job per round instead of waiting behind
  // the spammer's whole backlog.
  EXPECT_EQ(verdict_order[1], "alice");
  EXPECT_EQ(verdict_order[3], "alice");
}

TEST(PwsGatewayTest, TenantWeightsScaleDrrShare) {
  GatewayConfig gw;
  gw.tenant_weights["alice"] = 3.0;
  GatewayRig rig({}, gw);
  std::vector<std::string> verdict_order;

  for (int i = 0; i < 20; ++i) {
    rig.gateway->submit(req("spam", 1, 0.05),
                        track_user(verdict_order, "spam"));
  }
  for (int i = 0; i < 6; ++i) {
    rig.gateway->submit(req("alice", 1, 0.05),
                        track_user(verdict_order, "alice"));
  }
  rig.h.run_s(1.0);

  ASSERT_EQ(rig.gateway->stats().batches_sent, 1u);
  ASSERT_EQ(verdict_order.size(), 26u);
  // Weight 3 earns alice three slots per round to the spammer's one, so her
  // whole backlog drains within the first two DRR rounds.
  std::size_t alice_early = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    if (verdict_order[i] == "alice") ++alice_early;
  }
  EXPECT_EQ(alice_early, 6u);
}

TEST(PwsGatewayTest, ImmediateCancelAbsorbedLocally) {
  GatewayRig rig;
  std::vector<SubmitStatus> verdicts;
  std::vector<SubmissionGateway::Ticket> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(rig.gateway->submit(
        req("u" + std::to_string(i), 1, 0.05),
        [&verdicts](SubmissionGateway::Ticket, const BatchSubmitResult& r) {
          verdicts.push_back(r.status);
        }));
  }
  for (SubmissionGateway::Ticket t : tickets) {
    EXPECT_TRUE(rig.gateway->cancel(t));
  }
  rig.h.run_s(0.5);

  // Nothing ever reached the scheduler: no batch, no job, no cancel RPC.
  EXPECT_EQ(rig.gateway->stats().absorbed_cancels, 5u);
  EXPECT_EQ(rig.gateway->stats().batches_sent, 0u);
  EXPECT_EQ(rig.gateway->stats().cancels_sent, 0u);
  EXPECT_EQ(rig.pws.scheduler().jobs().size(), 0u);
  ASSERT_EQ(verdicts.size(), 5u);
  for (SubmitStatus s : verdicts) EXPECT_EQ(s, SubmitStatus::kCancelled);
}

TEST(PwsGatewayTest, CancelAfterShipCancelsRemotely) {
  GatewayRig rig;
  JobId id = 0;
  const SubmissionGateway::Ticket ticket = rig.gateway->submit(
      req("alice", 1, 30.0),
      [&id](SubmissionGateway::Ticket, const BatchSubmitResult& r) {
        id = r.job_id;
      });
  rig.h.run_s(0.5);
  ASSERT_NE(id, 0u);

  // The submission already left in a batch; the local absorb path refuses
  // and the caller falls back to a batched remote cancel by job id.
  EXPECT_FALSE(rig.gateway->cancel(ticket));
  rig.gateway->cancel_job(id);
  rig.h.run_s(0.5);

  EXPECT_EQ(rig.gateway->stats().cancels_sent, 1u);
  const Job* job = rig.pws.scheduler().job(id);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->state, JobState::kCancelled);
  EXPECT_EQ(rig.pws.scheduler().stats().cancelled, 1u);
}

TEST(PwsGatewayTest, AdmissionTokenBucketThrottlesSpammer) {
  GatewayRig rig([](PwsConfig& c) {
    c.admission_rate = 1.0;
    c.admission_burst = 4.0;
  });

  std::uint64_t spam_accepted = 0, spam_denied = 0, alice_accepted = 0;
  for (int i = 0; i < 40; ++i) {
    rig.gateway->submit(
        req("spam", 1, 0.05),
        [&](SubmissionGateway::Ticket, const BatchSubmitResult& r) {
          if (r.status == SubmitStatus::kAccepted) ++spam_accepted;
          if (r.status == SubmitStatus::kAdmissionDenied) ++spam_denied;
        });
  }
  for (int i = 0; i < 2; ++i) {
    rig.gateway->submit(
        req("alice", 1, 0.05),
        [&](SubmissionGateway::Ticket, const BatchSubmitResult& r) {
          if (r.status == SubmitStatus::kAccepted) ++alice_accepted;
        });
  }
  rig.h.run_s(1.0);

  // The whole window executes at one instant: the spammer gets exactly its
  // burst allowance, while the well-behaved tenant is untouched.
  EXPECT_EQ(spam_accepted, 4u);
  EXPECT_EQ(spam_denied, 36u);
  EXPECT_EQ(alice_accepted, 2u);
  EXPECT_EQ(rig.pws.scheduler().stats().admission_denied, 36u);
  EXPECT_EQ(rig.gateway->stats().denied, 36u);
  EXPECT_EQ(rig.pws.scheduler().jobs().size(), 6u);
}

TEST(PwsGatewayTest, DuplicateSubmitBatchReturnsIdenticalJobIds) {
  GatewayRig rig;
  TestClient client(rig.h.cluster,
                    rig.h.cluster.compute_nodes(net::PartitionId{1})[0]);

  auto make_batch = [&client] {
    auto msg = std::make_shared<PwsSubmitBatchMsg>();
    for (int i = 0; i < 3; ++i) {
      msg->requests.push_back(req("dup-user", 1, 0.05));
    }
    msg->reply_to = client.address();
    msg->request_id = 777;
    return msg;
  };

  const net::Address sched = rig.pws.scheduler().address();
  client.send_any(sched, make_batch());
  rig.h.run_s(0.5);
  // Retransmit of the same (client, request_id): the ReplayCache must answer
  // from its transcript without creating new jobs.
  client.send_any(sched, make_batch());
  rig.h.run_s(0.5);

  const auto replies = client.of_type<PwsSubmitBatchReplyMsg>();
  ASSERT_EQ(replies.size(), 2u);
  ASSERT_EQ(replies[0]->results.size(), 3u);
  ASSERT_EQ(replies[1]->results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(replies[0]->results[i].status, SubmitStatus::kAccepted);
    EXPECT_EQ(replies[1]->results[i].job_id, replies[0]->results[i].job_id);
    EXPECT_EQ(replies[1]->results[i].status, replies[0]->results[i].status);
  }
  EXPECT_EQ(rig.pws.scheduler().jobs().size(), 3u);
  EXPECT_EQ(rig.pws.scheduler().stats().batches, 1u);  // replay not re-executed
}

TEST(PwsGatewayTest, MetricsSurfaceInAdminReport) {
  GatewayRig rig;
  rig.h.cluster.metrics().set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    rig.gateway->submit(req("u" + std::to_string(i), 1, 0.05));
  }
  rig.h.run_s(1.0);

  admin::AdminConsole console(
      rig.h.cluster, rig.h.cluster.compute_nodes(net::PartitionId{0})[1],
      rig.h.kernel);
  const std::string report = console.metrics_report();
  EXPECT_NE(report.find("pws.schedule_latency_us"), std::string::npos);
  EXPECT_NE(report.find("pws.gateway.batches"), std::string::npos);
  EXPECT_NE(report.find("pws.gateway.backlog"), std::string::npos);
  EXPECT_NE(report.find("pws.queue_depth"), std::string::npos);
}

}  // namespace
}  // namespace phoenix::pws
