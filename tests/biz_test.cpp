// Business runtime tests: deployment, self-healing, placement policies,
// request availability accounting.
#include "biz/business_runtime.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"

namespace phoenix::biz {
namespace {

using phoenix::testing::KernelHarness;

kernel::FtParams biz_params() {
  kernel::FtParams p = phoenix::testing::fast_ft_params();
  p.detector_sample_interval = 1 * sim::kSecond;
  return p;
}

class BizTest : public ::testing::Test {
 protected:
  BizTest() : h(phoenix::testing::small_cluster_spec(), biz_params()) {
    BizConfig config;
    config.tiers = {{"web", 3, 0.5}, {"db", 2, 1.0}};
    config.request_interval = 500 * sim::kMillisecond;
    runtime = std::make_unique<BusinessRuntime>(
        h.cluster, h.cluster.server_node(net::PartitionId{0}), h.kernel, config);
    runtime->start();
    h.run_s(3.0);
  }

  KernelHarness h;
  std::unique_ptr<BusinessRuntime> runtime;
};

TEST_F(BizTest, DeploysTargetReplicaCounts) {
  EXPECT_EQ(runtime->replicas_running("web"), 3u);
  EXPECT_EQ(runtime->replicas_running("db"), 2u);
  EXPECT_EQ(runtime->stats().deployed, 5u);
}

TEST_F(BizTest, RequestsServedWhenAllTiersUp) {
  h.run_s(10.0);
  EXPECT_GT(runtime->stats().requests_served, 10u);
  EXPECT_EQ(runtime->stats().requests_failed, 0u);
  EXPECT_DOUBLE_EQ(runtime->stats().availability(), 1.0);
}

TEST_F(BizTest, ProcessDeathHealed) {
  const auto nodes = runtime->replica_nodes("db");
  ASSERT_FALSE(nodes.empty());
  // Kill one db replica directly.
  for (const auto& proc : h.cluster.node(nodes[0]).processes()) {
    if (proc.name == "biz.db" && proc.state == cluster::ProcessState::kRunning) {
      h.cluster.node(nodes[0]).terminate_process(
          proc.pid, cluster::ProcessState::kKilled, h.cluster.now());
      break;
    }
  }
  h.run_s(8.0);  // app detector publishes the exit; runtime redeploys
  EXPECT_EQ(runtime->replicas_running("db"), 2u);
  EXPECT_GE(runtime->stats().restarts, 1u);
}

TEST_F(BizTest, NodeCrashHealsAllReplicasOnIt) {
  const auto web_nodes = runtime->replica_nodes("web");
  ASSERT_FALSE(web_nodes.empty());
  h.injector.crash_node(web_nodes[0]);
  h.run_s(15.0);
  EXPECT_EQ(runtime->replicas_running("web"), 3u);
  for (net::NodeId n : runtime->replica_nodes("web")) {
    EXPECT_TRUE(h.cluster.node(n).alive());
  }
}

TEST_F(BizTest, TotalTierLossFailsRequestsThenRecovers) {
  // Crash every node hosting db replicas at once.
  for (net::NodeId n : runtime->replica_nodes("db")) {
    h.injector.crash_node(n);
  }
  h.run_s(20.0);  // outage window, then healing
  EXPECT_GT(runtime->stats().requests_failed, 0u);
  EXPECT_EQ(runtime->replicas_running("db"), 2u);  // healed
  h.run_s(5.0);
  EXPECT_LT(runtime->stats().availability(), 1.0);
  EXPECT_GT(runtime->stats().availability(), 0.3);
}

TEST(BizPlacementTest, LeastLoadedAvoidsHotNodes) {
  KernelHarness h(phoenix::testing::small_cluster_spec(), biz_params());
  // Make partition 0's computes hot, partition 1's idle, and let detectors
  // export that to the bulletin.
  for (net::NodeId n : h.cluster.compute_nodes(net::PartitionId{0})) {
    h.cluster.node(n).resources().cpu_pct = 95.0;
  }
  for (net::NodeId n : h.cluster.compute_nodes(net::PartitionId{1})) {
    h.cluster.node(n).resources().cpu_pct = 2.0;
  }
  for (const auto& node : h.cluster.nodes()) {
    h.kernel.detector(node.id()).sample_now();
  }
  h.run_s(1.0);

  BizConfig config;
  config.tiers = {{"web", 4, 0.1}};
  config.placement = PlacementPolicy::kLeastLoaded;
  config.load_refresh_interval = 1 * sim::kSecond;
  BusinessRuntime runtime(h.cluster, h.cluster.server_node(net::PartitionId{0}),
                          h.kernel, config);
  runtime.start();
  // Let one load refresh land, then heal-redeploy by crashing a replica...
  // simpler: the FIRST deployment happens before any load data arrives
  // (round-robin fallback), so force re-deploys after the cache fills.
  h.run_s(3.0);
  for (net::NodeId n : runtime.replica_nodes("web")) {
    if (h.cluster.partition_of(n) == net::PartitionId{0}) {
      h.injector.crash_node(n);
    }
  }
  h.run_s(15.0);

  ASSERT_EQ(runtime.replicas_running("web"), 4u);
  for (net::NodeId n : runtime.replica_nodes("web")) {
    EXPECT_EQ(h.cluster.partition_of(n), net::PartitionId{1})
        << "replica landed on hot node " << n.value;
  }
}

TEST(BizConfigTest, NoTiersMeansRequestsFail) {
  KernelHarness h(phoenix::testing::small_cluster_spec(), biz_params());
  BizConfig config;  // empty tiers
  BusinessRuntime runtime(h.cluster, h.cluster.server_node(net::PartitionId{0}),
                          h.kernel, config);
  runtime.start();
  h.run_s(1.0);
  EXPECT_FALSE(runtime.route_request());
}

}  // namespace
}  // namespace phoenix::biz
