// KernelApi tests: the uniform RPC facade — correlation, Result/Status
// completion, per-call options, and the full surface (config, security,
// checkpoint, bulletin, events, PPM).
#include "kernel/api.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"

namespace phoenix::kernel {
namespace {

using net::CallOptions;
using net::Result;
using net::Status;
using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class ApiTest : public ::testing::Test {
 protected:
  ApiTest()
      : h(small_cluster_spec(), fast_ft_params()),
        api(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0], h.kernel) {
    h.run_s(2.0);
  }

  KernelHarness h;
  KernelApi api;
};

TEST_F(ApiTest, ConfigRoundTrip) {
  bool set_done = false;
  api.config_set("api/key", "hello", [&](Result<std::uint64_t> r) {
    set_done = true;
    EXPECT_EQ(r.status, Status::kOk);
    EXPECT_GT(r.value, 0u);
  });
  h.run_s(1.0);
  EXPECT_TRUE(set_done);

  Result<std::optional<std::string>> got;
  api.config_get("api/key",
                 [&](Result<std::optional<std::string>> r) { got = std::move(r); });
  h.run_s(1.0);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value.has_value());
  EXPECT_EQ(*got.value, "hello");

  // A missing key is still a successful call: the service answered.
  Result<std::optional<std::string>> missing;
  api.config_get("api/nope", [&](Result<std::optional<std::string>> r) {
    missing = std::move(r);
  });
  h.run_s(1.0);
  EXPECT_EQ(missing.status, Status::kOk);
  EXPECT_FALSE(missing.value.has_value());
}

TEST_F(ApiTest, SecurityFlow) {
  h.kernel.security().add_user("alice", "pw", {"dev"});
  h.kernel.security().grant("dev", "deploy", "env/");

  Result<Token> token;
  api.authenticate("alice", "pw", [&](Result<Token> r) { token = std::move(r); });
  h.run_s(1.0);
  ASSERT_TRUE(token.ok());

  Status allowed = Status::kUnreachable;
  Status refused = Status::kUnreachable;
  api.authorize(token.value, "deploy", "env/prod",
                [&](Result<bool> r) { allowed = r.status; });
  api.authorize(token.value, "shutdown", "env/prod",
                [&](Result<bool> r) { refused = r.status; });
  h.run_s(1.0);
  EXPECT_EQ(allowed, Status::kOk);
  EXPECT_EQ(refused, Status::kDenied);

  // Bad credentials are a refusal, not a transport failure.
  Result<Token> bad;
  api.authenticate("alice", "wrong", [&](Result<Token> r) { bad = std::move(r); });
  h.run_s(1.0);
  EXPECT_EQ(bad.status, Status::kDenied);
  EXPECT_EQ(api.denied_calls(), 2u);
}

TEST_F(ApiTest, CheckpointRoundTrip) {
  Status saved = Status::kUnreachable;
  api.checkpoint_save("apisvc", "state", "blob-data",
                      [&](Result<std::uint64_t> r) { saved = r.status; });
  h.run_s(1.0);
  EXPECT_EQ(saved, Status::kOk);

  Result<std::optional<std::string>> loaded;
  api.checkpoint_load("apisvc", "state", [&](Result<std::optional<std::string>> r) {
    loaded = std::move(r);
  });
  h.run_s(2.0);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value.has_value());
  EXPECT_EQ(*loaded.value, "blob-data");
}

TEST_F(ApiTest, ClusterQueryThroughHomePartition) {
  h.run_s(3.0);  // detectors fill the bulletin
  Result<BulletinSnapshot> snap;
  api.query(BulletinTable::kNodes, /*cluster_scope=*/true, {},
            [&](Result<BulletinSnapshot> r) { snap = std::move(r); });
  h.run_s(2.0);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value.nodes.size(), h.cluster.node_count());
  EXPECT_EQ(snap.value.partitions_included, h.cluster.spec().partitions);
}

TEST_F(ApiTest, EventsSubscribeAndPublish) {
  std::vector<std::string> seen;
  Status subscribed = Status::kUnreachable;
  api.subscribe({"api.*"}, [&](const Event& e) { seen.push_back(e.type); },
                [&](Result<bool> r) { subscribed = r.status; });
  h.run_s(1.0);
  EXPECT_EQ(subscribed, Status::kOk);  // one-way: kOk at transmit time

  Event e;
  e.type = "api.ping";
  api.publish(e);
  Event other;
  other.type = "unrelated";
  api.publish(other);
  h.run_s(1.0);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "api.ping");
}

TEST_F(ApiTest, SpawnWithExitNotification) {
  Result<cluster::Pid> spawned;
  cluster::Pid exited_pid = 0;
  api.spawn(h.cluster.compute_nodes(net::PartitionId{0})[1],
            ProcessSpec{"apijob", "alice", 1.0, 2 * sim::kSecond, 0},
            [&](Result<cluster::Pid> r) { spawned = std::move(r); },
            [&](cluster::Pid p) { exited_pid = p; });
  h.run_s(1.0);
  EXPECT_TRUE(spawned.ok());
  EXPECT_GT(spawned.value, 0u);
  EXPECT_EQ(exited_pid, 0u);
  h.run_s(3.0);
  EXPECT_EQ(exited_pid, spawned.value);
}

TEST_F(ApiTest, ParallelCommandAggregates) {
  std::vector<net::NodeId> nodes;
  for (const auto& node : h.cluster.nodes()) nodes.push_back(node.id());
  Result<CommandOutcome> outcome;
  api.parallel_command("sync", nodes, 4,
                       [&](Result<CommandOutcome> r) { outcome = std::move(r); });
  h.run_s(10.0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value.succeeded, h.cluster.node_count());
  EXPECT_EQ(outcome.value.failed, 0u);
}

TEST_F(ApiTest, UnreachableServiceFailsWithStatus) {
  // Kill the configuration service AND its host node so no attempt can even
  // be transmitted: the call must fail kUnreachable (not kTimeout — nothing
  // was ever on the wire).
  h.injector.crash_node(h.cluster.server_node(net::PartitionId{0}));
  Status status = Status::kOk;
  api.config_get("any",
                 [&](Result<std::optional<std::string>> r) { status = r.status; },
                 CallOptions{.deadline = 2 * sim::kSecond});
  h.run_s(5.0);
  EXPECT_EQ(status, Status::kUnreachable);
  EXPECT_EQ(api.unreachable_calls(), 1u);
  EXPECT_EQ(api.timed_out_calls(), 0u);
  EXPECT_EQ(api.pending_calls(), 0u);
}

TEST_F(ApiTest, NonIdempotentCallIsNeverRetried) {
  // With idempotent=false the call gets exactly one attempt even though the
  // retry budget would allow more.
  h.injector.drop_next_to(
      h.kernel.service_address(ServiceKind::kConfiguration, net::PartitionId{0}),
      1);
  Status status = Status::kOk;
  api.config_set("api/oneshot", "v",
                 [&](Result<std::uint64_t> r) { status = r.status; },
                 CallOptions{.deadline = 8 * sim::kSecond, .idempotent = false});
  h.run_s(10.0);
  EXPECT_EQ(status, Status::kRetriesExhausted);
  EXPECT_EQ(api.retries_sent(), 0u);
}

TEST_F(ApiTest, EmptyParallelCommandCompletesImmediately) {
  bool done = false;
  api.parallel_command("noop", {}, 4, [&](Result<CommandOutcome> r) {
    done = true;
    EXPECT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.value.succeeded, 0u);
    EXPECT_EQ(r.value.failed, 0u);
  });
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace phoenix::kernel
