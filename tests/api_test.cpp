// KernelApi tests: the uniform RPC facade — correlation, timeouts, and the
// full surface (config, security, checkpoint, bulletin, events, PPM).
#include "kernel/api.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class ApiTest : public ::testing::Test {
 protected:
  ApiTest()
      : h(small_cluster_spec(), fast_ft_params()),
        api(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0], h.kernel) {
    h.run_s(2.0);
  }

  KernelHarness h;
  KernelApi api;
};

TEST_F(ApiTest, ConfigRoundTrip) {
  bool set_done = false;
  api.config_set("api/key", "hello", [&](bool ok, std::uint64_t version) {
    set_done = true;
    EXPECT_TRUE(ok);
    EXPECT_GT(version, 0u);
  });
  h.run_s(1.0);
  EXPECT_TRUE(set_done);

  std::optional<std::string> got;
  api.config_get("api/key", [&](std::optional<std::string> value) { got = value; });
  h.run_s(1.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "hello");

  bool missing_done = false;
  api.config_get("api/nope", [&](std::optional<std::string> value) {
    missing_done = true;
    EXPECT_FALSE(value.has_value());
  });
  h.run_s(1.0);
  EXPECT_TRUE(missing_done);
}

TEST_F(ApiTest, SecurityFlow) {
  h.kernel.security().add_user("alice", "pw", {"dev"});
  h.kernel.security().grant("dev", "deploy", "env/");

  std::optional<Token> token;
  api.authenticate("alice", "pw", [&](std::optional<Token> t) { token = t; });
  h.run_s(1.0);
  ASSERT_TRUE(token.has_value());

  bool allowed = false, denied = true;
  api.authorize(*token, "deploy", "env/prod", [&](bool ok) { allowed = ok; });
  api.authorize(*token, "shutdown", "env/prod", [&](bool ok) { denied = ok; });
  h.run_s(1.0);
  EXPECT_TRUE(allowed);
  EXPECT_FALSE(denied);

  std::optional<Token> bad = Token{};
  api.authenticate("alice", "wrong", [&](std::optional<Token> t) { bad = t; });
  h.run_s(1.0);
  EXPECT_FALSE(bad.has_value());
}

TEST_F(ApiTest, CheckpointRoundTrip) {
  bool saved = false;
  api.checkpoint_save("apisvc", "state", "blob-data",
                      [&](bool ok, std::uint64_t) { saved = ok; });
  h.run_s(1.0);
  EXPECT_TRUE(saved);

  std::optional<std::string> loaded;
  api.checkpoint_load("apisvc", "state",
                      [&](std::optional<std::string> data) { loaded = data; });
  h.run_s(2.0);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "blob-data");
}

TEST_F(ApiTest, ClusterQueryThroughHomePartition) {
  h.run_s(3.0);  // detectors fill the bulletin
  std::vector<NodeRecord> nodes;
  api.query(BulletinTable::kNodes, /*cluster_scope=*/true, {},
            [&](std::vector<NodeRecord> n, std::vector<AppRecord>) {
              nodes = std::move(n);
            });
  h.run_s(2.0);
  EXPECT_EQ(nodes.size(), h.cluster.node_count());
}

TEST_F(ApiTest, EventsSubscribeAndPublish) {
  std::vector<std::string> seen;
  api.subscribe({"api.*"}, [&](const Event& e) { seen.push_back(e.type); });
  h.run_s(1.0);

  Event e;
  e.type = "api.ping";
  api.publish(e);
  Event other;
  other.type = "unrelated";
  api.publish(other);
  h.run_s(1.0);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "api.ping");
}

TEST_F(ApiTest, SpawnWithExitNotification) {
  bool spawned = false;
  cluster::Pid pid = 0;
  cluster::Pid exited_pid = 0;
  api.spawn(h.cluster.compute_nodes(net::PartitionId{0})[1],
            ProcessSpec{"apijob", "alice", 1.0, 2 * sim::kSecond, 0},
            [&](bool ok, cluster::Pid p) {
              spawned = ok;
              pid = p;
            },
            [&](cluster::Pid p) { exited_pid = p; });
  h.run_s(1.0);
  EXPECT_TRUE(spawned);
  EXPECT_GT(pid, 0u);
  EXPECT_EQ(exited_pid, 0u);
  h.run_s(3.0);
  EXPECT_EQ(exited_pid, pid);
}

TEST_F(ApiTest, ParallelCommandAggregates) {
  std::vector<net::NodeId> nodes;
  for (const auto& node : h.cluster.nodes()) nodes.push_back(node.id());
  std::uint64_t ok = 0, bad = 1;
  api.parallel_command("sync", nodes, 4, [&](std::uint64_t s, std::uint64_t f) {
    ok = s;
    bad = f;
  });
  h.run_s(10.0);
  EXPECT_EQ(ok, h.cluster.node_count());
  EXPECT_EQ(bad, 0u);
}

TEST_F(ApiTest, CallTimeoutFiresWhenServiceUnreachable) {
  api.set_call_timeout(2 * sim::kSecond);
  // Kill the configuration service AND its host node so nothing answers.
  h.injector.crash_node(h.cluster.server_node(net::PartitionId{0}));
  bool completed = false;
  bool got_value = true;
  api.config_get("any", [&](std::optional<std::string> value) {
    completed = true;
    got_value = value.has_value();
  });
  h.run_s(5.0);
  EXPECT_TRUE(completed);
  EXPECT_FALSE(got_value);
  EXPECT_EQ(api.timed_out_calls(), 1u);
  EXPECT_EQ(api.pending_calls(), 0u);
}

TEST_F(ApiTest, EmptyParallelCommandCompletesImmediately) {
  bool done = false;
  api.parallel_command("noop", {}, 4, [&](std::uint64_t s, std::uint64_t f) {
    done = true;
    EXPECT_EQ(s, 0u);
    EXPECT_EQ(f, 0u);
  });
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace phoenix::kernel
