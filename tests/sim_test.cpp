// Unit tests for the discrete-event engine, RNG, and periodic tasks.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace phoenix::sim {
namespace {

TEST(TimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(30 * kSecond), 30.0);
  EXPECT_EQ(from_seconds(2.5), 2'500'000u);
  EXPECT_EQ(from_seconds(0.0), 0u);
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(format_duration(348), "348us");
  EXPECT_EQ(format_duration(2 * kMillisecond), "2.00ms");
  EXPECT_EQ(format_duration(30 * kSecond), "30.00s");
  EXPECT_EQ(format_duration(32'320'000), "32.32s");
}

TEST(EngineTest, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0u);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_FALSE(engine.step());
}

TEST(EngineTest, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(300, [&] { order.push_back(3); });
  engine.schedule_at(100, [&] { order.push_back(1); });
  engine.schedule_at(200, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 300u);
}

TEST(EngineTest, TiesBreakFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EngineTest, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  SimTime observed = 0;
  engine.schedule_at(100, [&] {
    engine.schedule_after(50, [&] { observed = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(observed, 150u);
}

TEST(EngineTest, PastScheduleClampsToNow) {
  Engine engine;
  engine.schedule_at(100, [] {});
  engine.run();
  SimTime when = kNever;
  engine.schedule_at(10, [&] { when = engine.now(); });  // in the past
  engine.run();
  EXPECT_EQ(when, 100u);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(100, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(engine.cancel(id));  // already cancelled
}

TEST(EngineTest, CancelInvalidIdReturnsFalse) {
  Engine engine;
  EXPECT_FALSE(engine.cancel(EventId{}));
  EXPECT_FALSE(engine.cancel(EventId{999}));
}

TEST(EngineTest, NextTimeLowerBoundTracksQueueHead) {
  Engine engine;
  EXPECT_EQ(engine.next_time_lower_bound(), kNever);  // empty queue
  const EventId early = engine.schedule_at(100, [] {});
  engine.schedule_at(300, [] {});
  EXPECT_EQ(engine.next_time_lower_bound(), 100u);
  // A lazily-cancelled head is a ghost: still a valid (conservative) lower
  // bound, popped for free on the next run.
  EXPECT_TRUE(engine.cancel(early));
  EXPECT_LE(engine.next_time_lower_bound(), 300u);
  engine.run_until(50);  // executes nothing, bound unchanged by clock alone
  EXPECT_LE(engine.next_time_lower_bound(), 300u);
  engine.run();
  EXPECT_EQ(engine.next_time_lower_bound(), kNever);
}

TEST(EngineTest, RunUntilAdvancesClockExactly) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(100, [&] { ++fired; });
  engine.schedule_at(200, [&] { ++fired; });
  engine.schedule_at(300, [&] { ++fired; });
  EXPECT_EQ(engine.run_until(250), 2u);
  EXPECT_EQ(engine.now(), 250u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.run_until(1000), 1u);
  EXPECT_EQ(engine.now(), 1000u);
}

TEST(EngineTest, RunForIsRelative) {
  Engine engine;
  engine.run_until(500);
  int fired = 0;
  engine.schedule_after(100, [&] { ++fired; });
  engine.run_for(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), 600u);
}

TEST(EngineTest, MaxEventsLimit) {
  Engine engine;
  int fired = 0;
  for (int i = 0; i < 10; ++i) engine.schedule_at(static_cast<SimTime>(i), [&] { ++fired; });
  EXPECT_EQ(engine.run(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(EngineTest, EventsScheduledDuringRunAreExecuted) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) engine.schedule_after(10, recurse);
  };
  engine.schedule_after(10, recurse);
  engine.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(engine.now(), 50u);
}

TEST(EngineTest, ExecutedCounterCounts) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.schedule_at(static_cast<SimTime>(i), [] {});
  engine.run();
  EXPECT_EQ(engine.executed(), 7u);
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  Engine engine;
  std::vector<SimTime> fires;
  PeriodicTask task(engine, 100, [&] { fires.push_back(engine.now()); });
  task.start();
  engine.run_until(350);
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 200, 300}));
}

TEST(PeriodicTaskTest, StartAfterCustomInitialDelay) {
  Engine engine;
  std::vector<SimTime> fires;
  PeriodicTask task(engine, 100, [&] { fires.push_back(engine.now()); });
  task.start_after(5);
  engine.run_until(215);
  EXPECT_EQ(fires, (std::vector<SimTime>{5, 105, 205}));
}

TEST(PeriodicTaskTest, StopFromOutside) {
  Engine engine;
  int count = 0;
  PeriodicTask task(engine, 100, [&] { ++count; });
  task.start();
  engine.run_until(250);
  task.stop();
  engine.run_until(1000);
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, StopFromInsideTick) {
  Engine engine;
  int count = 0;
  PeriodicTask task(engine, 100, [&] {
    if (++count == 3) task.stop();
  });
  task.start();
  engine.run_until(10'000);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTaskTest, RestartResetsPhase) {
  Engine engine;
  std::vector<SimTime> fires;
  PeriodicTask task(engine, 100, [&] { fires.push_back(engine.now()); });
  task.start();
  engine.run_until(150);  // fired at 100
  task.start_after(30);   // re-arm: next at 180
  engine.run_until(300);  // fires at 180, 280
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 180, 280}));
}

TEST(PeriodicTaskTest, SetPeriodTakesEffectOnNextArm) {
  Engine engine;
  std::vector<SimTime> fires;
  PeriodicTask task(engine, 100, [&] { fires.push_back(engine.now()); });
  task.start();
  // The tick at t=100 re-arms itself with the old period before we change
  // it, so the new 50-tick cadence begins after the t=200 tick.
  engine.run_until(100);
  task.set_period(50);
  engine.run_until(300);
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 200, 250, 300}));
}

TEST(PeriodicTaskTest, DestructorCancelsCleanly) {
  Engine engine;
  int count = 0;
  {
    PeriodicTask task(engine, 100, [&] { ++count; });
    task.start();
    engine.run_until(150);
  }
  engine.run_until(1000);
  EXPECT_EQ(count, 1);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(42, 42), 42u);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(4);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace phoenix::sim
