// System construction tool tests: dry-run plans, staged verified boot,
// incremental ring formation, degraded boot with dead hardware.
#include "construct/constructor.h"

#include <gtest/gtest.h>

#include "faults/fault_injector.h"
#include "kernel_fixture.h"

namespace phoenix::construct {
namespace {

using phoenix::testing::fast_ft_params;

cluster::ClusterSpec spec4() {
  cluster::ClusterSpec spec;
  spec.partitions = 4;
  spec.computes_per_partition = 3;
  spec.backups_per_partition = 1;
  return spec;
}

TEST(ConstructPlanTest, PlanListsEveryStage) {
  cluster::Cluster cluster(spec4());
  kernel::PhoenixKernel kernel(cluster, fast_ft_params());
  SystemConstructor constructor(kernel);
  const auto steps = constructor.plan();
  ASSERT_EQ(steps.size(), 2u + 4u + 1u);  // probe, core, 4 partitions, report
  EXPECT_NE(steps[0].find("probe"), std::string::npos);
  EXPECT_NE(steps[1].find("core"), std::string::npos);
  EXPECT_NE(steps[2].find("found meta-group"), std::string::npos);
  EXPECT_NE(steps[3].find("join meta-group"), std::string::npos);
}

TEST(ConstructTest, StagedBootBringsUpWholeCluster) {
  cluster::Cluster cluster(spec4());
  kernel::PhoenixKernel kernel(cluster, fast_ft_params());
  SystemConstructor constructor(kernel);
  const BootReport report = constructor.execute();

  EXPECT_TRUE(report.ok) << report.to_string();
  ASSERT_EQ(report.partitions.size(), 4u);
  for (const auto& pr : report.partitions) {
    EXPECT_TRUE(pr.ok) << report.to_string();
    EXPECT_TRUE(pr.ring_member);
    EXPECT_EQ(pr.nodes_deployed, 5u);
    EXPECT_GE(pr.bulletin_rows, 5u);
  }
  // The ring formed incrementally and every member agrees.
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(kernel.gsd(net::PartitionId{p}).view().members.size(), 4u);
  }
  // Join order == partition order, so partition 0 leads.
  EXPECT_TRUE(kernel.gsd(net::PartitionId{0}).is_leader());
  EXPECT_TRUE(kernel.gsd(net::PartitionId{1}).is_princess());
}

TEST(ConstructTest, ConstructedSystemSurvivesFaults) {
  // A staged-boot cluster must be as fault-tolerant as a boot() cluster.
  cluster::Cluster cluster(spec4());
  kernel::PhoenixKernel kernel(cluster, fast_ft_params());
  SystemConstructor constructor(kernel);
  ASSERT_TRUE(constructor.execute().ok);

  faults::FaultInjector injector(cluster);
  injector.crash_node(cluster.server_node(net::PartitionId{2}));
  cluster.engine().run_for(25 * sim::kSecond);

  EXPECT_TRUE(kernel.gsd(net::PartitionId{2}).alive());
  EXPECT_NE(kernel.gsd(net::PartitionId{2}).node_id(),
            cluster.server_node(net::PartitionId{2}));
  const auto record = kernel.fault_log().last("GSD");
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->recovered);
}

TEST(ConstructTest, DeadComputeNodesSkippedAndReported) {
  cluster::Cluster cluster(spec4());
  cluster.crash_node(cluster.compute_nodes(net::PartitionId{1})[0]);
  cluster.crash_node(cluster.compute_nodes(net::PartitionId{1})[1]);

  kernel::PhoenixKernel kernel(cluster, fast_ft_params());
  SystemConstructor constructor(kernel);
  const BootReport report = constructor.execute();

  EXPECT_EQ(report.nodes_dead_at_probe, 2u);
  const auto& pr = report.partitions[1];
  EXPECT_EQ(pr.nodes_skipped, 2u);
  EXPECT_EQ(pr.nodes_deployed, 3u);
  EXPECT_TRUE(pr.ok) << report.to_string();
}

TEST(ConstructTest, DeadServerNodeFailsItsPartitionOnly) {
  cluster::Cluster cluster(spec4());
  cluster.crash_node(cluster.server_node(net::PartitionId{2}));

  kernel::PhoenixKernel kernel(cluster, fast_ft_params());
  SystemConstructor constructor(kernel);
  const BootReport report = constructor.execute();

  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.partitions.size(), 4u);
  EXPECT_TRUE(report.partitions[0].ok);
  EXPECT_TRUE(report.partitions[1].ok);
  EXPECT_FALSE(report.partitions[2].ok);
  EXPECT_NE(report.partitions[2].note.find("server"), std::string::npos);
  EXPECT_TRUE(report.partitions[3].ok);
  // The ring formed from the three healthy partitions.
  EXPECT_EQ(kernel.gsd(net::PartitionId{0}).view().members.size(), 3u);
}

TEST(ConstructTest, StopOnFailureHaltsRollout) {
  cluster::Cluster cluster(spec4());
  cluster.crash_node(cluster.server_node(net::PartitionId{1}));

  kernel::PhoenixKernel kernel(cluster, fast_ft_params());
  ConstructOptions options;
  options.stop_on_failure = true;
  SystemConstructor constructor(kernel, options);
  const BootReport report = constructor.execute();

  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.partitions.size(), 2u);  // 0 ok, 1 failed, stop
}

TEST(ConstructTest, ReportRendersHumanReadable) {
  cluster::Cluster cluster(spec4());
  kernel::PhoenixKernel kernel(cluster, fast_ft_params());
  SystemConstructor constructor(kernel);
  const std::string text = constructor.execute().to_string();
  EXPECT_NE(text.find("boot OK"), std::string::npos);
  EXPECT_NE(text.find("partition 0"), std::string::npos);
  EXPECT_NE(text.find("ring=joined"), std::string::npos);
}

TEST(RingBootstrapTest, LoneRestartedGsdFoundsNewGroupEventually) {
  // If every peer is unreachable, a recovering GSD must not retry joining
  // forever: after bounded attempts it founds a singleton group.
  cluster::ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 2;
  spec.backups_per_partition = 1;
  cluster::Cluster cluster(spec);
  kernel::PhoenixKernel kernel(cluster, fast_ft_params());
  kernel.boot();
  cluster.engine().run_for(5 * sim::kSecond);

  faults::FaultInjector injector(cluster);
  // Kill partition 1's whole server (its GSD dies and stays dead: also kill
  // the backup so migration cannot happen), then restart partition 0's GSD.
  injector.crash_node(cluster.server_node(net::PartitionId{1}));
  injector.crash_node(cluster.backup_nodes(net::PartitionId{1})[0]);
  for (net::NodeId n : cluster.compute_nodes(net::PartitionId{1})) {
    injector.crash_node(n);
  }
  injector.kill_daemon(kernel.gsd(net::PartitionId{0}));
  kernel.gsd(net::PartitionId{0}).start();
  cluster.engine().run_for(60 * sim::kSecond);

  EXPECT_TRUE(kernel.gsd(net::PartitionId{0}).joined());
  EXPECT_TRUE(kernel.gsd(net::PartitionId{0}).is_leader());
}

}  // namespace
}  // namespace phoenix::construct
