// Detector service tests: resource sampling, bulletin exports, application
// lifecycle events.
#include "kernel/detector/detectors.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "test_client.h"
#include "workload/resource_model.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class DetectorTest : public ::testing::Test {
 protected:
  DetectorTest() : h(small_cluster_spec(), fast_ft_params()) {}
  KernelHarness h;
};

TEST_F(DetectorTest, SamplesPeriodically) {
  h.run_s(5.5);
  // 1 s sample interval (fast params): roughly five samples by now.
  const auto samples = h.kernel.detector(net::NodeId{2}).samples_taken();
  EXPECT_GE(samples, 4u);
  EXPECT_LE(samples, 6u);
}

TEST_F(DetectorTest, ExportsResourceGaugesToBulletin) {
  h.cluster.node(net::NodeId{3}).resources().cpu_pct = 42.5;
  h.kernel.detector(net::NodeId{3}).sample_now();
  h.run_s(1.0);
  bool found = false;
  for (const auto& row : h.kernel.bulletin(net::PartitionId{0}).node_rows()) {
    if (row.node == net::NodeId{3}) {
      found = true;
      EXPECT_DOUBLE_EQ(row.usage.cpu_pct, 42.5);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DetectorTest, PublishesAppStartedAndExitedEvents) {
  TestClient consumer(h.cluster, net::NodeId{4});
  auto sub = std::make_shared<EsSubscribeMsg>();
  sub->subscription.consumer = consumer.address();
  sub->subscription.types = {std::string(event_types::kAppStarted),
                             std::string(event_types::kAppExited)};
  consumer.send_any(
      h.kernel.service_address(ServiceKind::kEventService, net::PartitionId{0}),
      sub);
  h.run_s(1.0);

  auto& ppm = h.kernel.ppm(net::NodeId{3});
  ppm.spawn_local(ProcessSpec{"appjob", "alice", 1.0, 2 * sim::kSecond, 0});
  h.run_s(6.0);

  bool started = false, exited = false;
  for (const auto* n : consumer.of_type<EsNotifyMsg>()) {
    if (n->event.type == event_types::kAppStarted &&
        n->event.attr("name") == "appjob") {
      started = true;
    }
    if (n->event.type == event_types::kAppExited &&
        n->event.attr("name") == "appjob") {
      exited = true;
      EXPECT_EQ(n->event.attr("state"), "exited");
    }
  }
  EXPECT_TRUE(started);
  EXPECT_TRUE(exited);
}

TEST_F(DetectorTest, DeadDetectorStopsSampling) {
  h.run_s(2.5);
  h.kernel.detector(net::NodeId{2}).kill();
  const auto before = h.kernel.detector(net::NodeId{2}).samples_taken();
  h.run_s(5.0);
  EXPECT_EQ(h.kernel.detector(net::NodeId{2}).samples_taken(), before);
}

TEST_F(DetectorTest, SamplingStaggeredAcrossNodes) {
  // Detectors must not all fire in the same microsecond (thundering herd).
  h.run_s(1.2);
  std::set<sim::SimTime> update_times;
  for (const auto& row : h.kernel.bulletin(net::PartitionId{0}).node_rows()) {
    update_times.insert(row.updated_at);
  }
  EXPECT_GT(update_times.size(), 1u);
}

TEST(ResourceModelTest, DrivesGaugesTowardBaselines) {
  cluster::Cluster cluster(small_cluster_spec());
  workload::ResourceModelParams params;
  params.base_cpu_pct = 10.0;
  params.base_mem_pct = 50.0;
  params.base_swap_pct = 0.7;
  params.update_interval = sim::kSecond;
  workload::ResourceModel model(cluster, params);
  model.start();
  cluster.engine().run_for(60 * sim::kSecond);

  double cpu = 0, mem = 0, swap = 0;
  for (const auto& node : cluster.nodes()) {
    cpu += node.resources().cpu_pct;
    mem += node.resources().mem_pct;
    swap += node.resources().swap_pct;
  }
  const double n = static_cast<double>(cluster.node_count());
  EXPECT_NEAR(cpu / n, 10.0, 8.0);
  EXPECT_NEAR(mem / n, 50.0, 12.0);
  EXPECT_LT(swap / n, 3.0);
}

TEST(ResourceModelTest, GaugesStayInBounds) {
  cluster::Cluster cluster(small_cluster_spec());
  workload::ResourceModel model(cluster, {});
  model.start();
  cluster.engine().run_for(120 * sim::kSecond);
  for (const auto& node : cluster.nodes()) {
    EXPECT_GE(node.resources().cpu_pct, 0.0);
    EXPECT_LE(node.resources().cpu_pct, 100.0);
    EXPECT_GE(node.resources().mem_pct, 0.0);
    EXPECT_LE(node.resources().mem_pct, 100.0);
    EXPECT_GE(node.resources().swap_pct, 0.0);
  }
}

TEST(ResourceModelTest, ProcessLoadRaisesCpu) {
  cluster::Cluster cluster(small_cluster_spec());
  workload::ResourceModelParams params;
  params.base_cpu_pct = 5.0;
  params.cpu_noise = 0.5;
  workload::ResourceModel model(cluster, params);
  // A 4-CPU node fully loaded by a job.
  cluster.node(net::NodeId{2}).add_process(cluster::ProcessInfo{
      .pid = 1, .name = "hpl", .owner = "u",
      .state = cluster::ProcessState::kRunning, .cpu_share = 4.0});
  model.update_once();
  EXPECT_GT(cluster.node(net::NodeId{2}).resources().cpu_pct, 90.0);
  EXPECT_LT(cluster.node(net::NodeId{3}).resources().cpu_pct, 20.0);
}

TEST(ResourceModelTest, DeadNodesNotUpdated) {
  cluster::Cluster cluster(small_cluster_spec());
  workload::ResourceModel model(cluster, {});
  cluster.crash_node(net::NodeId{2});
  const double before = cluster.node(net::NodeId{2}).resources().cpu_pct;
  model.update_once();
  EXPECT_DOUBLE_EQ(cluster.node(net::NodeId{2}).resources().cpu_pct, before);
}

}  // namespace
}  // namespace phoenix::kernel
