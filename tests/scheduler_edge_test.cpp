// Edge cases of the lazy-cancel slot/generation scheduler, plus an
// equivalence test replaying a 10k-event trace against a reference
// implementation of the old scheduler (eager hash-set liveness tracking,
// std::function callbacks) to prove event ordering is bit-identical.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/inplace_function.h"

namespace phoenix::sim {
namespace {

// ---------------------------------------------------------------------------
// Generation-counter wrap (the ABA bound of lazy cancellation).
// ---------------------------------------------------------------------------

TEST(SchedulerEdgeTest, StaleIdAfterFireDoesNotCancelSlotReuser) {
  Engine eng;
  bool first_fired = false;
  const EventId stale = eng.schedule_at(10, [&] { first_fired = true; });
  eng.run();
  EXPECT_TRUE(first_fired);
  EXPECT_FALSE(eng.cancel(stale));  // already fired

  // The slot is reused (LIFO free list) with a bumped generation; the stale
  // id from the fired event must not cancel the new occupant.
  bool second_fired = false;
  const EventId reuse = eng.schedule_at(20, [&] { second_fired = true; });
  EXPECT_EQ(reuse.value >> Engine::kGenerationBits,
            stale.value >> Engine::kGenerationBits);  // same slot...
  EXPECT_NE(reuse.value, stale.value);                // ...new generation
  EXPECT_FALSE(eng.cancel(stale));
  eng.run();
  EXPECT_TRUE(second_fired);
}

TEST(SchedulerEdgeTest, CancelThenReuseAcrossGenerationWrap) {
  // One slot reused until its generation counter wraps: generations run
  // 1, 2, ..., 2^k-1, then back to 1 (0 is skipped — it marks invalid ids).
  // After the full cycle an ancient EventId aliases the current occupant;
  // this is the documented ABA bound of the scheme, and the engine must
  // stay consistent (no double-free of the slot, exact pending count).
  constexpr std::uint64_t kCycle = (1ull << Engine::kGenerationBits) - 1;

  Engine eng;
  const EventId ancient = eng.schedule_at(1000, [] {});
  EXPECT_TRUE(eng.cancel(ancient));

  // Burn through the remaining generations of this one slot.
  for (std::uint64_t i = 0; i < kCycle - 1; ++i) {
    const EventId id = eng.schedule_at(1000, [] {});
    ASSERT_EQ(id.value >> Engine::kGenerationBits,
              ancient.value >> Engine::kGenerationBits)
        << "free list must reuse the same slot";
    ASSERT_TRUE(eng.cancel(id));
    ASSERT_FALSE(eng.cancel(ancient)) << "stale id must stay dead pre-wrap";
  }

  // Next occupant carries the wrapped generation: the ancient id aliases it.
  const EventId reborn = eng.schedule_at(1000, [] {});
  EXPECT_EQ(reborn.value, ancient.value);
  EXPECT_EQ(eng.pending(), 1u);
  EXPECT_TRUE(eng.cancel(ancient));  // documented ABA: cancels the reuser
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_FALSE(eng.cancel(reborn));

  // The queue still holds ~2^k lazily-cancelled ghosts; they must all drain
  // without executing anything.
  EXPECT_EQ(eng.run(), 0u);
  EXPECT_EQ(eng.executed(), 0u);
}

// ---------------------------------------------------------------------------
// PeriodicTask re-entrancy.
// ---------------------------------------------------------------------------

TEST(SchedulerEdgeTest, PeriodicStopThenStartInsideOwnTick) {
  Engine eng;
  std::vector<SimTime> fires;
  PeriodicTask task(eng, 100, [&] {
    fires.push_back(eng.now());
    if (fires.size() == 2) {
      task.stop();
      task.start_after(37);  // re-phase from inside the tick
    }
  });
  task.start();
  eng.run_until(600);
  // 100, 200 (re-phased), 237, 337, 437, 537.
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 200, 237, 337, 437, 537}));
  EXPECT_TRUE(task.running());
}

TEST(SchedulerEdgeTest, PeriodicStopInsideTickStaysStopped) {
  Engine eng;
  int count = 0;
  PeriodicTask task(eng, 50, [&] {
    if (++count == 3) task.stop();
  });
  task.start();
  eng.run_until(5'000);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.running());
  EXPECT_EQ(eng.pending(), 0u);  // no orphaned re-arm left behind
}

TEST(SchedulerEdgeTest, PeriodicRestartInsideTickUsesFullPeriod) {
  Engine eng;
  std::vector<SimTime> fires;
  PeriodicTask task(eng, 100, [&] {
    fires.push_back(eng.now());
    if (fires.size() == 1) task.start();  // restart resets the phase
  });
  task.start();
  eng.run_until(450);
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 200, 300, 400}));
}

// ---------------------------------------------------------------------------
// run_until with same-time ties.
// ---------------------------------------------------------------------------

TEST(SchedulerEdgeTest, RunUntilExecutesAllSameTimeEventsFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    eng.schedule_at(500, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(eng.run_until(500), 8u);  // boundary is inclusive
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(eng.now(), 500u);
}

TEST(SchedulerEdgeTest, RunUntilIncludesSameTimeEventsScheduledMidRun) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(500, [&] {
    order.push_back(1);
    // Same-time child scheduled from inside a tied event: still <= t, must
    // run within this run_until, after already-queued ties (FIFO).
    eng.schedule_at(500, [&] { order.push_back(3); });
  });
  eng.schedule_at(500, [&] { order.push_back(2); });
  eng.schedule_at(501, [&] { order.push_back(4); });
  EXPECT_EQ(eng.run_until(500), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 500u);
  EXPECT_EQ(eng.pending(), 1u);  // the 501 event stays queued
}

TEST(SchedulerEdgeTest, RunUntilSkipsCancelledGhostsWithoutOverrunning) {
  Engine eng;
  bool far_fired = false;
  const EventId ghost = eng.schedule_at(100, [] { FAIL() << "cancelled"; });
  eng.schedule_at(5'000, [&] { far_fired = true; });
  eng.cancel(ghost);
  // A cancelled entry at t=100 sits at the head of the queue; running until
  // t=200 must not leak past it into the t=5000 event.
  EXPECT_EQ(eng.run_until(200), 0u);
  EXPECT_FALSE(far_fired);
  EXPECT_EQ(eng.now(), 200u);
  EXPECT_EQ(eng.run_until(10'000), 1u);
  EXPECT_TRUE(far_fired);
}

// ---------------------------------------------------------------------------
// Callback storage.
// ---------------------------------------------------------------------------

TEST(SchedulerEdgeTest, HotPathLambdasAreStoredInline) {
  struct FabricSized {
    void* self;
    std::uint64_t a, b, c;
    std::shared_ptr<int> p;
    void operator()() const {}
  };
  static_assert(Engine::Callback::stores_inline<FabricSized>(),
                "delivery-lambda-sized captures must not heap-allocate");
  // Oversized closures still work via the heap fallback.
  struct Huge {
    std::uint64_t blob[32];
    void operator()() const {}
  };
  static_assert(!Engine::Callback::stores_inline<Huge>());
  Engine eng;
  Huge huge{};
  huge.blob[0] = 7;
  std::uint64_t seen = 0;
  eng.schedule_at(1, [huge, &seen] { seen = huge.blob[0]; });
  eng.run();
  EXPECT_EQ(seen, 7u);
}

TEST(SchedulerEdgeTest, MoveOnlyCapturesAreSupported) {
  Engine eng;
  auto owned = std::make_unique<int>(99);
  int seen = 0;
  eng.schedule_at(1, [owned = std::move(owned), &seen] { seen = *owned; });
  eng.run();
  EXPECT_EQ(seen, 99);
}

// ---------------------------------------------------------------------------
// Equivalence with the old scheduler.
// ---------------------------------------------------------------------------

// Reference implementation: the pre-overhaul engine verbatim — a priority
// queue of (time, seq, std::function) entries with an unordered_set of live
// sequence numbers, eagerly erased on cancel/fire.
class ReferenceEngine {
 public:
  using Callback = std::function<void()>;
  struct Id {
    std::uint64_t value = 0;
  };

  SimTime now() const noexcept { return now_; }

  Id schedule_at(SimTime t, Callback cb) {
    if (t < now_) t = now_;
    const std::uint64_t seq = next_seq_++;
    queue_.push(Entry{t, seq, std::move(cb)});
    live_.insert(seq);
    return Id{seq};
  }
  Id schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }
  bool cancel(Id id) { return live_.erase(id.value) > 0; }

  bool step() {
    while (!queue_.empty()) {
      Entry e = std::move(const_cast<Entry&>(queue_.top()));
      queue_.pop();
      if (live_.erase(e.seq) == 0) continue;
      now_ = e.time;
      ++executed_;
      e.cb();
      return true;
    }
    return false;
  }
  std::size_t run() {
    std::size_t n = 0;
    while (step()) ++n;
    return n;
  }
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;
};

// Deterministic workload table shared by both schedulers. Every fired event
// may schedule children and cancel an earlier event, all decided by pure
// functions of the event's label so the two runs see the exact same
// decisions.
struct TraceWorkload {
  static constexpr std::size_t kRoots = 400;
  static constexpr std::size_t kMaxEvents = 10'000;

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return x;
  }
  static SimTime root_time(std::size_t label) { return 1 + mix(label) % 977; }
  static SimTime child_delay(std::size_t label, int child) {
    return mix(label * 31 + static_cast<std::uint64_t>(child)) % 199;  // 0 = same-time tie
  }
  static int children_of(std::size_t label) {
    return static_cast<int>(mix(label ^ 0xabcdu) % 3);  // 0..2 children
  }
  static bool cancels(std::size_t label) { return mix(label ^ 0x77u) % 4 == 0; }
  static std::size_t cancel_victim(std::size_t label, std::size_t scheduled) {
    return mix(label * 7919) % scheduled;
  }
};

// Drives one scheduler through the workload, recording the label of every
// fired event in execution order.
template <typename EngineT, typename IdT>
std::vector<std::size_t> record_trace() {
  EngineT eng;
  std::vector<IdT> ids;  // label -> id
  std::vector<std::size_t> fired_order;

  std::function<void(std::size_t)> fire = [&](std::size_t label) {
    fired_order.push_back(label);
    const int kids = TraceWorkload::children_of(label);
    for (int c = 0; c < kids; ++c) {
      if (ids.size() >= TraceWorkload::kMaxEvents) break;
      const std::size_t child_label = ids.size();
      ids.push_back(eng.schedule_after(
          TraceWorkload::child_delay(label, c),
          [&fire, child_label] { fire(child_label); }));
    }
    if (TraceWorkload::cancels(label)) {
      eng.cancel(ids[TraceWorkload::cancel_victim(label, ids.size())]);
    }
  };

  for (std::size_t r = 0; r < TraceWorkload::kRoots; ++r) {
    const std::size_t label = ids.size();
    ids.push_back(eng.schedule_at(TraceWorkload::root_time(label),
                                  [&fire, label] { fire(label); }));
  }
  eng.run();
  return fired_order;
}

TEST(SchedulerEquivalenceTest, ReplaysTraceInIdenticalOrder) {
  const auto reference = record_trace<ReferenceEngine, ReferenceEngine::Id>();
  const auto actual = record_trace<Engine, EventId>();

  // The workload must be substantial enough to be meaningful: thousands of
  // events with same-time ties and cross-cancellations.
  ASSERT_GT(reference.size(), 2'000u);
  ASSERT_EQ(actual.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(actual[i], reference[i]) << "divergence at position " << i;
  }
}

TEST(SchedulerEquivalenceTest, SameSeedSameExecutionOrder) {
  // Determinism of the new scheduler itself: two identical runs.
  const auto a = record_trace<Engine, EventId>();
  const auto b = record_trace<Engine, EventId>();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace phoenix::sim
