// Robustness tests: every kernel daemon must survive unknown, malformed,
// misdirected, and stale messages without crashing or corrupting state —
// plus GridView's time-series/performance-analysis features.
#include <gtest/gtest.h>

#include "gridview/gridview.h"
#include "kernel_fixture.h"
#include "pws/pws.h"
#include "test_client.h"
#include "workload/resource_model.h"

namespace phoenix {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

/// A message no daemon understands.
struct GarbageMsg final : net::Message {
  std::string_view type() const noexcept override { return "fuzz.garbage"; }
  std::size_t wire_size() const noexcept override { return 64; }
};

TEST(RobustnessTest, EveryKernelDaemonIgnoresGarbage) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(3.0);
  TestClient fuzzer(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0],
                    net::PortId{99});

  // Blast every bound kernel port on every node with garbage.
  for (const auto& node : h.cluster.nodes()) {
    for (std::uint16_t port = 1; port <= 13; ++port) {
      fuzzer.send_any({node.id(), net::PortId{port}}, std::make_shared<GarbageMsg>());
    }
  }
  h.run_s(10.0);

  // The kernel keeps working: no spurious fault records, ring intact,
  // heartbeats flowing.
  EXPECT_TRUE(h.kernel.fault_log().records().empty());
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{0}).view().members.size(), 2u);
  const auto before = h.kernel.gsd(net::PartitionId{0}).heartbeats_received();
  h.run_s(4.0);
  EXPECT_GT(h.kernel.gsd(net::PartitionId{0}).heartbeats_received(), before);
}

TEST(RobustnessTest, StaleRepliesIgnored) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(3.0);
  TestClient fuzzer(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0],
                    net::PortId{99});

  // Forge replies with request ids nobody issued.
  auto forged_probe = std::make_shared<kernel::ProbeReplyMsg>();
  forged_probe->probe_id = 0xdeadbeef;
  fuzzer.send_any(h.kernel.gsd(net::PartitionId{0}).address(), forged_probe);

  auto forged_load = std::make_shared<kernel::CheckpointLoadReplyMsg>();
  forged_load->request_id = 0xdeadbeef;
  forged_load->found = true;
  forged_load->data = "poison";
  fuzzer.send_any(h.kernel.gsd(net::PartitionId{0}).address(), forged_load);
  fuzzer.send_any(h.kernel.event_service(net::PartitionId{0}).address(), forged_load);

  auto forged_start = std::make_shared<kernel::StartServiceReplyMsg>();
  forged_start->request_id = 0xdeadbeef;
  forged_start->ok = true;
  fuzzer.send_any(h.kernel.gsd(net::PartitionId{0}).address(), forged_start);

  h.run_s(8.0);
  EXPECT_TRUE(h.kernel.fault_log().records().empty());
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{0}).is_leader());
}

TEST(RobustnessTest, ForgedViewWithLowerIdRejected) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(3.0);
  TestClient fuzzer(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0],
                    net::PortId{99});

  auto forged = std::make_shared<kernel::ViewChangeMsg>();
  forged->view.view_id = 0;  // lower than the live view
  fuzzer.send_any(h.kernel.gsd(net::PartitionId{1}).address(), forged);
  h.run_s(2.0);
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{1}).view().members.size(), 2u);
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{1}).joined());
}

TEST(RobustnessTest, MalformedCheckpointDataSurvivesRecovery) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(3.0);
  // Poison the ES registry checkpoint with garbage, then restart the ES.
  h.kernel.checkpoint_service(net::PartitionId{0})
      .save_local("es/0", "registry", "||garbage||lines\nmore|garbage");
  h.kernel.event_service(net::PartitionId{0}).kill();
  h.kernel.event_service(net::PartitionId{0}).start();
  h.run_s(5.0);
  EXPECT_TRUE(h.kernel.event_service(net::PartitionId{0}).alive());
  // A fresh subscription still works end to end.
  TestClient consumer(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[1]);
  kernel::Subscription sub;
  sub.consumer = consumer.address();
  sub.types = {"post.recovery"};
  h.kernel.event_service(net::PartitionId{0}).subscribe_local(sub, false);
  kernel::Event e;
  e.type = "post.recovery";
  h.kernel.event_service(net::PartitionId{0}).publish_local(e);
  h.run_s(1.0);
  EXPECT_EQ(consumer.of_type<kernel::EsNotifyMsg>().size(), 1u);
}

TEST(RobustnessTest, PwsIgnoresForeignExitNotifications) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  pws::PwsConfig config;
  pws::PoolConfig pool;
  pool.name = "batch";
  pool.nodes = h.cluster.compute_nodes(net::PartitionId{0});
  config.pools = {pool};
  pws::PwsSystem pws_system(h.kernel, config);
  h.run_s(1.0);

  TestClient fuzzer(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0],
                    net::PortId{99});
  auto forged = std::make_shared<kernel::ExitNotifyMsg>();
  forged->pid = 424242;
  forged->node = net::NodeId{3};
  fuzzer.send_any(pws_system.scheduler().address(), forged);
  h.run_s(2.0);
  EXPECT_EQ(pws_system.scheduler().stats().completed, 0u);
  EXPECT_TRUE(pws_system.scheduler().alive());
}

TEST(GridViewHistoryTest, TimeSeriesAndSparklines) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  workload::ResourceModelParams load;
  load.update_interval = sim::kSecond;
  workload::ResourceModel model(h.cluster, load);
  model.start();
  gridview::GridView view(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0],
                          h.kernel, 2 * sim::kSecond);
  view.start();
  h.run_s(61.0);

  EXPECT_GE(view.history().size(), 25u);
  // Samples are time-ordered.
  for (std::size_t i = 1; i < view.history().size(); ++i) {
    EXPECT_GT(view.history()[i].at, view.history()[i - 1].at);
  }
  EXPECT_GT(view.mean_query_latency_s(), 0.0);
  EXPECT_LT(view.mean_query_latency_s(), 0.1);

  const std::string spark = view.render_sparkline(gridview::GridView::Metric::kMem, 40);
  EXPECT_GE(spark.size(), 40u);
  EXPECT_NE(spark.find('['), std::string::npos);  // range annotation
  EXPECT_EQ(view.render_sparkline(gridview::GridView::Metric::kCpu, 0), "(no data)");
}

TEST(GridViewHistoryTest, HistoryBounded) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  gridview::GridView view(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0],
                          h.kernel, 1 * sim::kSecond);
  view.start();
  h.run_s(1000.0);
  EXPECT_LE(view.history().size(), 720u);
}

}  // namespace
}  // namespace phoenix
