// A generic client daemon for tests: records every envelope it receives and
// exposes typed accessors over the capture buffer.
#pragma once

#include <memory>
#include <vector>

#include "cluster/daemon.h"

namespace phoenix::testing {

class TestClient final : public cluster::Daemon {
 public:
  TestClient(cluster::Cluster& cluster, net::NodeId node,
             net::PortId port = cluster::ports::kClient)
      : Daemon(cluster, "test.client", node, port) {
    start();
  }

  /// All received messages, in arrival order.
  const std::vector<net::Envelope>& received() const noexcept { return received_; }

  /// Messages of a given type, downcast.
  template <typename T>
  std::vector<const T*> of_type() const {
    std::vector<const T*> out;
    for (const auto& env : received_) {
      if (const T* msg = net::message_cast<T>(*env.message)) out.push_back(msg);
    }
    return out;
  }

  template <typename T>
  const T* last_of_type() const {
    for (auto it = received_.rbegin(); it != received_.rend(); ++it) {
      if (const T* msg = net::message_cast<T>(*it->message)) return msg;
    }
    return nullptr;
  }

  std::size_t count() const noexcept { return received_.size(); }
  void clear() { received_.clear(); }

  using Daemon::send;
  using Daemon::send_any;

 private:
  void handle(const net::Envelope& env) override { received_.push_back(env); }

  std::vector<net::Envelope> received_;
};

}  // namespace phoenix::testing
