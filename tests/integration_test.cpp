// End-to-end integration tests reproducing the paper's §5.1 evaluation
// scenarios on the Dawning-4000A-like testbed: 136 nodes, 8 partitions of
// one server + 16 compute nodes, 30 s heartbeat interval — plus property
// sweeps over the heartbeat interval and randomized failure sequences.
#include <gtest/gtest.h>

#include <algorithm>

#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;

/// The paper's §5.1 testbed: 136 nodes = 8 x (1 server + 16 compute),
/// heartbeat interval 30 s. (No dedicated backups are mentioned; migration
/// falls back to compute nodes.)
cluster::ClusterSpec paper_testbed() {
  cluster::ClusterSpec spec;
  spec.partitions = 8;
  spec.computes_per_partition = 16;
  spec.backups_per_partition = 0;
  spec.networks = 3;
  spec.cpus_per_node = 4;
  return spec;
}

class PaperScenarioTest : public ::testing::Test {
 protected:
  PaperScenarioTest() : h(paper_testbed()) {
    // 30 s default heartbeat. Let two rounds pass, then measure cleanly.
    h.run_s(65.0);
    h.kernel.fault_log().clear();
  }

  KernelHarness h;
};

TEST_F(PaperScenarioTest, Table1WdProcessFailureTimings) {
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{3})[5];
  h.run_until_after_heartbeat(victim);
  const sim::SimTime injected = h.injector.kill_daemon(h.kernel.watch_daemon(victim));
  h.run_s(90.0);

  const auto record = h.kernel.fault_log().last("WD", FaultKind::kProcessFailure);
  ASSERT_TRUE(record.has_value());
  ASSERT_TRUE(record->recovered);
  const double detect = sim::to_seconds(record->detected_at - injected);
  const double diagnose = sim::to_seconds(record->diagnosed_at - record->detected_at);
  const double recover = sim::to_seconds(record->recovered_at - record->diagnosed_at);
  // Paper Table 1: 30 s / 0.29 s / ~0.1 s, sum 30.39 s.
  EXPECT_NEAR(detect, 30.0, 3.0);
  EXPECT_NEAR(diagnose, 0.29, 0.15);
  EXPECT_NEAR(recover, 0.10, 0.08);
}

TEST_F(PaperScenarioTest, Table1WdNodeFailureTimings) {
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{2})[7];
  h.run_until_after_heartbeat(victim);
  const sim::SimTime injected = h.injector.crash_node(victim);
  h.run_s(90.0);

  const auto record = h.kernel.fault_log().last("WD", FaultKind::kNodeFailure);
  ASSERT_TRUE(record.has_value());
  const double detect = sim::to_seconds(record->detected_at - injected);
  const double diagnose = sim::to_seconds(record->diagnosed_at - record->detected_at);
  const double recover = sim::to_seconds(record->recovered_at - record->diagnosed_at);
  // Paper Table 1: 30 s / 2 s / 0 s, sum 32 s.
  EXPECT_NEAR(detect, 30.0, 3.0);
  EXPECT_NEAR(diagnose, 2.0, 0.6);
  EXPECT_DOUBLE_EQ(recover, 0.0);
}

TEST_F(PaperScenarioTest, Table1WdNetworkFailureTimings) {
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{1})[3];
  h.run_until_after_heartbeat(victim);
  const sim::SimTime injected = h.injector.cut_interface(victim, net::NetworkId{0});
  h.run_s(90.0);

  const auto record = h.kernel.fault_log().last("WD", FaultKind::kNetworkFailure);
  ASSERT_TRUE(record.has_value());
  const double detect = sim::to_seconds(record->detected_at - injected);
  const double diagnose_us =
      static_cast<double>(record->diagnosed_at - record->detected_at);
  // Paper Table 1: 30 s / 348 us / 0 s.
  EXPECT_NEAR(detect, 30.0, 3.0);
  EXPECT_NEAR(diagnose_us, 348.0, 120.0);
  EXPECT_EQ(record->recovered_at, record->diagnosed_at);
}

TEST_F(PaperScenarioTest, Table2GsdProcessFailureTimings) {
  h.run_until_after_heartbeat(h.cluster.server_node(net::PartitionId{4}));
  const sim::SimTime injected =
      h.injector.kill_daemon(h.kernel.gsd(net::PartitionId{4}));
  h.run_s(120.0);

  const auto record = h.kernel.fault_log().last("GSD", FaultKind::kProcessFailure);
  ASSERT_TRUE(record.has_value());
  ASSERT_TRUE(record->recovered);
  const double detect = sim::to_seconds(record->detected_at - injected);
  const double diagnose = sim::to_seconds(record->diagnosed_at - record->detected_at);
  const double recover = sim::to_seconds(record->recovered_at - record->diagnosed_at);
  // Paper Table 2: 30 s / 0.29 s / 2.03 s, sum 32.32 s.
  EXPECT_NEAR(detect, 30.0, 3.0);
  EXPECT_NEAR(diagnose, 0.29, 0.15);
  EXPECT_NEAR(recover, 2.03, 0.8);
}

TEST_F(PaperScenarioTest, Table2GsdNodeFailureTimings) {
  const net::NodeId server = h.cluster.server_node(net::PartitionId{4});
  h.run_until_after_heartbeat(server);
  const sim::SimTime injected = h.injector.crash_node(server);
  h.run_s(120.0);

  const auto record = h.kernel.fault_log().last("GSD", FaultKind::kNodeFailure);
  ASSERT_TRUE(record.has_value());
  ASSERT_TRUE(record->recovered);
  const double detect = sim::to_seconds(record->detected_at - injected);
  const double diagnose = sim::to_seconds(record->diagnosed_at - record->detected_at);
  const double recover = sim::to_seconds(record->recovered_at - record->diagnosed_at);
  // Paper Table 2: 30 s / 0.3 s / 2.95 s, sum 33.25 s.
  EXPECT_NEAR(detect, 30.0, 3.0);
  EXPECT_NEAR(diagnose, 0.3, 0.15);
  EXPECT_NEAR(recover, 2.95, 1.0);
  // The migrated GSD runs on a node of the same partition.
  EXPECT_EQ(h.cluster.partition_of(h.kernel.gsd(net::PartitionId{4}).node_id()),
            net::PartitionId{4});
  EXPECT_NE(h.kernel.gsd(net::PartitionId{4}).node_id(), server);
}

TEST_F(PaperScenarioTest, Table3EsProcessFailureTimings) {
  h.run_until_after_heartbeat(h.cluster.server_node(net::PartitionId{5}));
  const sim::SimTime injected =
      h.injector.kill_daemon(h.kernel.event_service(net::PartitionId{5}));
  h.run_s(90.0);

  const auto record = h.kernel.fault_log().last("ES", FaultKind::kProcessFailure);
  ASSERT_TRUE(record.has_value());
  ASSERT_TRUE(record->recovered);
  const double detect = sim::to_seconds(record->detected_at - injected);
  const double diagnose_us =
      static_cast<double>(record->diagnosed_at - record->detected_at);
  const double recover = sim::to_seconds(record->recovered_at - record->diagnosed_at);
  // Paper Table 3: 30 s / 12 us / 0.12 s, sum 30.12 s.
  EXPECT_GE(detect, 1.0);
  EXPECT_LE(detect, 33.0);
  EXPECT_NEAR(diagnose_us, 12.0, 5.0);
  EXPECT_NEAR(recover, 0.12, 0.08);
}

TEST_F(PaperScenarioTest, Table3EsNodeFailureTimings) {
  const net::NodeId server = h.cluster.server_node(net::PartitionId{6});
  h.run_until_after_heartbeat(server);
  const sim::SimTime injected = h.injector.crash_node(server);
  h.run_s(120.0);

  const auto record = h.kernel.fault_log().last("ES", FaultKind::kNodeFailure);
  ASSERT_TRUE(record.has_value());
  ASSERT_TRUE(record->recovered);
  const double detect = sim::to_seconds(record->detected_at - injected);
  const double recover = sim::to_seconds(record->recovered_at - record->diagnosed_at);
  // Paper Table 3: 30 s / 0.3 s / 2.95 s. The ES recovery rides the GSD
  // migration plus its own restart and cross-partition state fetch, so we
  // accept a wider band on recovery while requiring the same order.
  EXPECT_NEAR(detect, 30.0, 3.0);
  EXPECT_GE(recover, 2.0);
  EXPECT_LE(recover, 8.0);
  // The recovered instance kept its duty: it lives with the migrated GSD.
  EXPECT_EQ(h.kernel.event_service(net::PartitionId{6}).node_id(),
            h.kernel.gsd(net::PartitionId{6}).node_id());
}

TEST_F(PaperScenarioTest, SumTracksHeartbeatInterval) {
  // The paper's headline: detect+diagnose+recover ~= heartbeat interval.
  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[1];
  h.run_until_after_heartbeat(victim);
  const sim::SimTime injected = h.injector.kill_daemon(h.kernel.watch_daemon(victim));
  h.run_s(90.0);
  const auto record = h.kernel.fault_log().last("WD");
  ASSERT_TRUE(record.has_value());
  const double sum = sim::to_seconds(record->recovered_at - injected);
  EXPECT_NEAR(sum, 30.39, 3.5);
}

// --- heartbeat-interval sweep (property: detect time tracks the interval) ---

class HeartbeatSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(HeartbeatSweepTest, DetectTimeTracksInterval) {
  const double interval_s = GetParam();
  cluster::ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 4;
  spec.backups_per_partition = 1;
  kernel::FtParams params;
  params.heartbeat_interval = sim::from_seconds(interval_s);
  KernelHarness h(spec, params);
  h.run_s(2.5 * interval_s);
  h.kernel.fault_log().clear();

  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[0];
  const sim::SimTime injected = h.injector.kill_daemon(h.kernel.watch_daemon(victim));
  h.run_s(4.0 * interval_s + 10.0);

  const auto record = h.kernel.fault_log().last("WD");
  ASSERT_TRUE(record.has_value());
  const double detect = sim::to_seconds(record->detected_at - injected);
  EXPECT_GE(detect, 0.5 * interval_s);
  EXPECT_LE(detect, 2.2 * interval_s + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Intervals, HeartbeatSweepTest,
                         ::testing::Values(1, 5, 15, 30));

// --- randomized ring-failure property sweep --------------------------------

class RingChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingChurnTest, RingReconvergesAfterRandomFailures) {
  cluster::ClusterSpec spec;
  spec.partitions = 6;
  spec.computes_per_partition = 2;
  spec.backups_per_partition = 1;
  spec.seed = GetParam();
  KernelHarness h(spec, phoenix::testing::fast_ft_params());
  h.run_s(5.0);

  sim::Rng rng(GetParam());
  // Three failure rounds: kill a random GSD (process or node), wait for
  // reconvergence, repeat.
  for (int round = 0; round < 3; ++round) {
    const auto p = net::PartitionId{
        static_cast<std::uint32_t>(rng.uniform_int(0, spec.partitions - 1))};
    if (rng.chance(0.5)) {
      h.injector.kill_daemon(h.kernel.gsd(p));
    } else {
      h.injector.crash_node(h.kernel.gsd(p).node_id());
    }
    h.run_s(30.0);
  }

  // Invariants: every live GSD agrees on a view containing all partitions,
  // exactly one leader, princess == leader's ring successor.
  std::size_t leaders = 0;
  for (std::uint32_t p = 0; p < spec.partitions; ++p) {
    auto& gsd = h.kernel.gsd(net::PartitionId{p});
    ASSERT_TRUE(gsd.alive()) << "partition " << p;
    EXPECT_EQ(gsd.view().members.size(), spec.partitions) << "partition " << p;
    if (gsd.is_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1u);
  const auto& view = h.kernel.gsd(net::PartitionId{0}).view();
  ASSERT_GE(view.members.size(), 2u);
  EXPECT_EQ(view.successor_of(view.leader()->partition)->partition,
            view.princess()->partition);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingChurnTest,
                         ::testing::Values(11, 23, 37, 59, 71));

// --- cross-service end-to-end -------------------------------------------------

TEST(EndToEndTest, FailureEventsReachSubscribersAcrossPartitions) {
  KernelHarness h(phoenix::testing::small_cluster_spec(),
                  phoenix::testing::fast_ft_params());
  h.run_s(3.0);
  // A consumer in partition 1 subscribes at ITS local instance but learns
  // about failures detected in partition 0 — the single access point story.
  TestClient consumer(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0]);
  auto sub = std::make_shared<EsSubscribeMsg>();
  sub->subscription.consumer = consumer.address();
  sub->subscription.types = {std::string(event_types::kNodeFailed)};
  consumer.send_any(
      h.kernel.service_address(ServiceKind::kEventService, net::PartitionId{1}), sub);
  h.run_s(1.0);

  const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[2];
  h.injector.crash_node(victim);
  h.run_s(12.0);

  bool seen = false;
  for (const auto* n : consumer.of_type<EsNotifyMsg>()) {
    if (n->event.subject_node == victim) seen = true;
  }
  EXPECT_TRUE(seen);
}

TEST(EndToEndTest, PartitionIsolationThenHeal) {
  KernelHarness h(phoenix::testing::small_cluster_spec(),
                  phoenix::testing::fast_ft_params());
  h.run_s(3.0);
  // Cut every interface of partition 1's server node: to the ring this is
  // indistinguishable from a node death, so the partition services migrate.
  const net::NodeId server = h.cluster.server_node(net::PartitionId{1});
  for (std::uint8_t n = 0; n < 3; ++n) {
    h.injector.cut_interface(server, net::NetworkId{n});
  }
  h.run_s(25.0);
  EXPECT_NE(h.kernel.gsd(net::PartitionId{1}).node_id(), server);
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{1}).alive());
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{0}).view().members.size(), 2u);
}

TEST(EndToEndTest, DeterministicReplay) {
  // Two runs with the same spec and seed produce identical fault logs.
  auto run_once = [] {
    KernelHarness h(phoenix::testing::small_cluster_spec(),
                    phoenix::testing::fast_ft_params());
    h.run_s(3.0);
    h.injector.crash_node(h.cluster.compute_nodes(net::PartitionId{0})[1]);
    h.run_s(15.0);
    std::vector<std::pair<sim::SimTime, sim::SimTime>> out;
    for (const auto& r : h.kernel.fault_log().records()) {
      out.emplace_back(r.detected_at, r.diagnosed_at);
    }
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace phoenix::kernel
