// PWS job-management tests: submission, policies, multi-pool leasing,
// event-driven failure handling, security integration, scheduler HA.
#include "pws/pws.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::pws {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

PwsConfig one_pool_config(const cluster::Cluster& cluster,
                          SchedPolicy policy = SchedPolicy::kFifo) {
  PwsConfig config;
  PoolConfig pool;
  pool.name = "batch";
  pool.policy = policy;
  for (std::uint32_t p = 0; p < cluster.spec().partitions; ++p) {
    for (net::NodeId n : cluster.compute_nodes(net::PartitionId{p})) {
      pool.nodes.push_back(n);
    }
  }
  config.pools = {pool};
  return config;
}

SubmitRequest req(const std::string& user, unsigned nodes, double seconds,
                  const std::string& pool = "batch") {
  SubmitRequest r;
  r.user = user;
  r.pool = pool;
  r.nodes = nodes;
  r.duration = sim::from_seconds(seconds);
  return r;
}

class PwsTest : public ::testing::Test {
 protected:
  PwsTest()
      : h(small_cluster_spec(), fast_ft_params()),
        pws(h.kernel, one_pool_config(h.cluster)) {
    h.run_s(1.0);
  }

  KernelHarness h;
  PwsSystem pws;
};

TEST_F(PwsTest, SubmitRunsAndCompletes) {
  const JobId id = pws.submit(req("alice", 2, 5.0));
  h.run_s(3.0);
  const Job* job = pws.scheduler().job(id);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->state, JobState::kRunning);
  EXPECT_EQ(job->allocated.size(), 2u);

  h.run_s(10.0);
  job = pws.scheduler().job(id);
  EXPECT_EQ(job->state, JobState::kCompleted);
  EXPECT_EQ(pws.scheduler().stats().completed, 1u);
}

TEST_F(PwsTest, UnknownPoolRejected) {
  const JobId id = pws.submit(req("alice", 1, 1.0, "no-such-pool"));
  EXPECT_EQ(pws.scheduler().job(id)->state, JobState::kRejected);
  EXPECT_EQ(pws.scheduler().stats().rejected, 1u);
}

TEST_F(PwsTest, FifoOrderPreserved) {
  // 8 compute nodes total; each job takes all of them, so they serialize.
  const JobId a = pws.submit(req("u1", 8, 5.0));
  const JobId b = pws.submit(req("u2", 8, 5.0));
  h.run_s(3.0);
  EXPECT_EQ(pws.scheduler().job(a)->state, JobState::kRunning);
  EXPECT_EQ(pws.scheduler().job(b)->state, JobState::kQueued);
  h.run_s(7.0);
  EXPECT_EQ(pws.scheduler().job(a)->state, JobState::kCompleted);
  EXPECT_EQ(pws.scheduler().job(b)->state, JobState::kRunning);
}

TEST_F(PwsTest, JobsNeverShareNodes) {
  const JobId a = pws.submit(req("u1", 5, 20.0));
  const JobId b = pws.submit(req("u2", 3, 20.0));
  h.run_s(5.0);
  const Job* ja = pws.scheduler().job(a);
  const Job* jb = pws.scheduler().job(b);
  ASSERT_EQ(ja->state, JobState::kRunning);
  ASSERT_EQ(jb->state, JobState::kRunning);
  for (net::NodeId na : ja->allocated) {
    for (net::NodeId nb : jb->allocated) {
      EXPECT_NE(na, nb);
    }
  }
}

TEST_F(PwsTest, NodeFailureRequeuesJob) {
  const JobId id = pws.submit(req("alice", 2, 120.0));
  h.run_s(3.0);
  const Job* job = pws.scheduler().job(id);
  ASSERT_EQ(job->state, JobState::kRunning);
  const net::NodeId victim = job->allocated[0];

  h.injector.crash_node(victim);
  h.run_s(15.0);  // detection (2 s hb) + diagnosis + event + requeue + restart

  job = pws.scheduler().job(id);
  EXPECT_EQ(job->requeues, 1u);
  EXPECT_EQ(job->state, JobState::kRunning);  // restarted on healthy nodes
  for (net::NodeId n : job->allocated) {
    EXPECT_NE(n, victim);
    EXPECT_TRUE(h.cluster.node(n).alive());
  }
  EXPECT_EQ(pws.scheduler().stats().requeued, 1u);
}

TEST_F(PwsTest, RequeueBudgetExhaustedFailsJob) {
  auto& sched = pws.scheduler();
  const JobId id = sched.submit(req("alice", 1, 600.0));
  for (unsigned attempt = 0; attempt <= 2; ++attempt) {
    h.run_s(5.0);
    const Job* job = sched.job(id);
    ASSERT_EQ(job->state, JobState::kRunning) << "attempt " << attempt;
    h.injector.crash_node(job->allocated[0]);
    h.run_s(15.0);
  }
  EXPECT_EQ(sched.job(id)->state, JobState::kFailed);
  EXPECT_EQ(sched.stats().failed, 1u);
}

TEST_F(PwsTest, CancelQueuedAndRunning) {
  const JobId running = pws.submit(req("u", 8, 100.0));
  const JobId queued = pws.submit(req("u", 8, 100.0));
  h.run_s(3.0);
  EXPECT_TRUE(pws.scheduler().cancel(queued));
  EXPECT_EQ(pws.scheduler().job(queued)->state, JobState::kCancelled);
  EXPECT_TRUE(pws.scheduler().cancel(running));
  EXPECT_EQ(pws.scheduler().job(running)->state, JobState::kCancelled);
  EXPECT_FALSE(pws.scheduler().cancel(running));  // already terminal
  // Nodes freed for later work.
  h.run_s(2.0);
  const JobId next = pws.submit(req("u", 8, 50.0));
  h.run_s(3.0);
  EXPECT_EQ(pws.scheduler().job(next)->state, JobState::kRunning);
}

TEST(PwsPolicyTest, SjfRunsShortJobsFirst) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  PwsSystem pws(h.kernel, one_pool_config(h.cluster, SchedPolicy::kSjf));
  h.run_s(1.0);
  // Occupy the whole pool so ordering is decided while queued.
  pws.submit(req("u", 8, 4.0));
  const JobId slow = pws.submit(req("u", 8, 100.0));
  const JobId fast = pws.submit(req("u", 8, 5.0));
  h.run_s(8.0);  // first job done; SJF must pick `fast` over `slow`
  EXPECT_EQ(pws.scheduler().job(fast)->state, JobState::kRunning);
  EXPECT_EQ(pws.scheduler().job(slow)->state, JobState::kQueued);
}

TEST(PwsPolicyTest, FairShareFavorsLightUsers) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  PwsSystem pws(h.kernel, one_pool_config(h.cluster, SchedPolicy::kFairShare));
  h.run_s(1.0);
  // heavy-user burns node-seconds first.
  pws.submit(req("heavy", 8, 6.0));
  h.run_s(8.0);
  ASSERT_GT(pws.scheduler().user_usage().at("heavy"), 0.0);
  // Both users queue whole-machine jobs at once; the light user must be
  // ordered ahead of the heavy one despite submitting later.
  const JobId heavy2 = pws.submit(req("heavy", 8, 5.0));
  const JobId light = pws.submit(req("light", 8, 5.0));
  h.run_s(4.0);
  EXPECT_EQ(pws.scheduler().job(light)->state, JobState::kRunning);
  EXPECT_EQ(pws.scheduler().job(heavy2)->state, JobState::kQueued);
  h.run_s(20.0);
  EXPECT_LT(pws.scheduler().job(light)->started_at,
            pws.scheduler().job(heavy2)->started_at);
}

TEST(PwsPolicyTest, BackfillFillsHolesWithoutDelayingHead) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  PwsSystem pws(h.kernel, one_pool_config(h.cluster, SchedPolicy::kBackfill));
  h.run_s(1.0);
  // 8 nodes. Job A takes 6 for 20 s. Head-of-queue B needs 8 (blocked).
  // C needs 2 nodes for 5 s: fits in the hole and ends before A frees B.
  pws.submit(req("u", 6, 20.0));
  const JobId blocked_head = pws.submit(req("u", 8, 10.0));
  const JobId filler = pws.submit(req("u", 2, 5.0));
  h.run_s(4.0);
  EXPECT_EQ(pws.scheduler().job(filler)->state, JobState::kRunning)
      << "backfill should start the small job in the hole";
  EXPECT_EQ(pws.scheduler().job(blocked_head)->state, JobState::kQueued);

  // A long filler that WOULD delay the head must not start.
  const JobId bad_filler = pws.submit(req("u", 2, 500.0));
  h.run_s(4.0);
  EXPECT_EQ(pws.scheduler().job(bad_filler)->state, JobState::kQueued);
}

TEST(PwsLeasingTest, IdleNodesLeaseAcrossPoolsAndReturn) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  // Two pools of 4 nodes each.
  PwsConfig config;
  PoolConfig pool_a, pool_b;
  pool_a.name = "alpha";
  pool_b.name = "beta";
  pool_a.nodes = h.cluster.compute_nodes(net::PartitionId{0});
  pool_b.nodes = h.cluster.compute_nodes(net::PartitionId{1});
  config.pools = {pool_a, pool_b};
  PwsSystem pws(h.kernel, config);
  h.run_s(1.0);

  // A 6-node job in alpha exceeds its 4 owned nodes; beta is idle.
  const JobId big = pws.submit(req("alice", 6, 5.0, "alpha"));
  h.run_s(3.0);
  const Job* job = pws.scheduler().job(big);
  ASSERT_EQ(job->state, JobState::kRunning);
  std::size_t borrowed = 0;
  for (net::NodeId n : job->allocated) {
    if (pws.scheduler().is_leased(n)) ++borrowed;
  }
  EXPECT_EQ(borrowed, 2u);
  EXPECT_GE(pws.scheduler().stats().leases_granted, 2u);

  // After completion the leases return to beta.
  h.run_s(10.0);
  EXPECT_EQ(pws.scheduler().job(big)->state, JobState::kCompleted);
  for (net::NodeId n : pool_b.nodes) {
    EXPECT_FALSE(pws.scheduler().is_leased(n));
    EXPECT_EQ(pws.scheduler().effective_pool(n), "beta");
  }
}

TEST(PwsLeasingTest, BusyOwnerDoesNotLend) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  PwsConfig config;
  PoolConfig pool_a, pool_b;
  pool_a.name = "alpha";
  pool_b.name = "beta";
  pool_a.nodes = h.cluster.compute_nodes(net::PartitionId{0});
  pool_b.nodes = h.cluster.compute_nodes(net::PartitionId{1});
  config.pools = {pool_a, pool_b};
  PwsSystem pws(h.kernel, config);
  h.run_s(1.0);

  // Beta has its own queued demand: it must refuse to lend.
  pws.submit(req("bob", 4, 30.0, "beta"));
  const JobId beta_waiting = pws.submit(req("bob", 4, 30.0, "beta"));
  const JobId alpha_big = pws.submit(req("alice", 6, 30.0, "alpha"));
  h.run_s(5.0);
  EXPECT_EQ(pws.scheduler().job(alpha_big)->state, JobState::kQueued);
  EXPECT_EQ(pws.scheduler().job(beta_waiting)->state, JobState::kQueued);
  EXPECT_EQ(pws.scheduler().stats().leases_granted, 0u);
}

TEST(PwsSecurityTest, UnauthorizedSubmissionRejected) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  auto config = one_pool_config(h.cluster);
  config.use_security = true;
  PwsSystem pws(h.kernel, config);
  auto& security = h.kernel.security();
  security.add_user("alice", "pw", {"scientist"});
  security.grant("scientist", "job.submit", "pool/batch");
  security.add_user("mallory", "pw2", {"guest"});
  h.run_s(1.0);

  TestClient client(h.cluster, net::NodeId{3});
  auto submit = [&](const std::string& user, const std::string& secret,
                    std::uint64_t rid) {
    // Authenticate directly (local API), then submit over messages.
    auto token = security.authenticate(user, secret);
    ASSERT_TRUE(token.has_value());
    auto msg = std::make_shared<PwsSubmitMsg>();
    msg->request = req(user, 1, 5.0);
    msg->token = *token;
    msg->reply_to = client.address();
    msg->request_id = rid;
    client.send_any(pws.scheduler().address(), msg);
  };

  submit("alice", "pw", 1);
  submit("mallory", "pw2", 2);
  h.run_s(3.0);

  const auto replies = client.of_type<PwsSubmitReplyMsg>();
  ASSERT_EQ(replies.size(), 2u);
  bool alice_ok = false, mallory_rejected = false;
  for (const auto* r : replies) {
    if (r->request_id == 1 && r->accepted) alice_ok = true;
    if (r->request_id == 2 && !r->accepted) mallory_rejected = true;
  }
  EXPECT_TRUE(alice_ok);
  EXPECT_TRUE(mallory_rejected);
  EXPECT_EQ(pws.scheduler().stats().rejected, 1u);
}

TEST(PwsHaTest, SchedulerProcessRestartKeepsJobs) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  PwsSystem pws(h.kernel, one_pool_config(h.cluster));
  h.run_s(1.0);

  const JobId running = pws.submit(req("alice", 2, 60.0));
  const JobId queued_long = pws.submit(req("alice", 8, 60.0));
  h.run_s(3.0);
  ASSERT_EQ(pws.scheduler().job(running)->state, JobState::kRunning);

  // Kill the scheduler. The GSD supervising it restarts it; checkpointed
  // state brings the job table back.
  h.injector.kill_daemon(pws.scheduler());
  h.run_s(15.0);

  ASSERT_TRUE(pws.scheduler().alive());
  const Job* recovered_running = pws.scheduler().job(running);
  const Job* recovered_queued = pws.scheduler().job(queued_long);
  ASSERT_NE(recovered_running, nullptr);
  ASSERT_NE(recovered_queued, nullptr);
  EXPECT_EQ(recovered_running->state, JobState::kRunning);
  EXPECT_EQ(recovered_queued->state, JobState::kQueued);
}

TEST(PwsHaTest, JobCompletionDuringSchedulerOutageReconciled) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  PwsSystem pws(h.kernel, one_pool_config(h.cluster));
  h.run_s(1.0);

  const JobId id = pws.submit(req("alice", 1, 4.0));
  h.run_s(2.0);
  ASSERT_EQ(pws.scheduler().job(id)->state, JobState::kRunning);

  // Scheduler dies; the job finishes while it is down.
  h.injector.kill_daemon(pws.scheduler());
  h.run_s(15.0);  // job exits at ~4 s; restart + bulletin reconciliation

  ASSERT_TRUE(pws.scheduler().alive());
  h.run_s(5.0);
  EXPECT_EQ(pws.scheduler().job(id)->state, JobState::kCompleted);
}

TEST(PwsSerializationTest, JobsRoundTrip) {
  std::map<JobId, Job> jobs;
  Job j;
  j.id = 7;
  j.name = "alpha";
  j.user = "bob";
  j.pool = "batch";
  j.nodes_needed = 3;
  j.duration = 123456;
  j.state = JobState::kRunning;
  j.submitted_at = 10;
  j.started_at = 20;
  j.exited = 1;
  j.requeues = 2;
  j.allocated = {net::NodeId{4}, net::NodeId{5}};
  j.pids = {{4, 100}, {5, 101}};
  jobs[7] = j;

  const auto parsed = deserialize_jobs(serialize_jobs(jobs));
  ASSERT_EQ(parsed.size(), 1u);
  const Job& p = parsed.at(7);
  EXPECT_EQ(p.name, "alpha");
  EXPECT_EQ(p.user, "bob");
  EXPECT_EQ(p.nodes_needed, 3u);
  EXPECT_EQ(p.duration, 123456u);
  EXPECT_EQ(p.state, JobState::kRunning);
  EXPECT_EQ(p.requeues, 2u);
  ASSERT_EQ(p.allocated.size(), 2u);
  EXPECT_EQ(p.allocated[1].value, 5u);
  EXPECT_EQ(p.pids.at(4), 100u);
}

TEST(PwsSerializationTest, MalformedLinesSkipped) {
  const auto parsed = deserialize_jobs("garbage|line\n\nnot|enough|fields\n");
  EXPECT_TRUE(parsed.empty());
}

}  // namespace
}  // namespace phoenix::pws
