// ServiceRuntime tests: declarative dispatch and counters, at-most-once
// serving via the runtime-owned ReplayCache, ReplayCache eviction edge
// cases, the unified kill -> restart -> restore lifecycle across services,
// takeover accounting, the per-service stats surface, and the acceptance
// check that a brand-new service built on the runtime rides the existing
// group-service failover machinery with no group-service edits.
#include "kernel/runtime/service_runtime.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "kernel/api.h"
#include "kernel/bulletin/data_bulletin.h"
#include "kernel/config/configuration_service.h"
#include "kernel/event/event_service.h"
#include "kernel/kernel.h"
#include "kernel_fixture.h"
#include "net/rpc.h"
#include "test_client.h"

namespace phoenix::kernel {
namespace {

using net::ReplayCache;
using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

// --- ReplayCache eviction edge cases -----------------------------------------

const net::Address kClientA{net::NodeId{1}, net::PortId{40}};
const net::Address kClientB{net::NodeId{2}, net::PortId{40}};
const net::MessageTypeId kType = net::intern_message_type("test.replay_edge");

std::shared_ptr<const net::Message> dummy_reply() {
  struct Reply final : net::Message {
    PHOENIX_MESSAGE_TYPE("test.replay_edge_reply")
    std::size_t wire_size() const noexcept override { return 1; }
  };
  return std::make_shared<Reply>();
}

TEST(ReplayCacheEdgeTest, CapacityOneEvictsFifo) {
  ReplayCache cache(1);
  ASSERT_EQ(cache.begin(kClientA, kType, 1), ReplayCache::Admit::kNew);
  cache.complete(kClientA, kType, 1, dummy_reply());
  EXPECT_EQ(cache.size(), 1u);

  // A second completed entry evicts the first (FIFO at capacity 1).
  ASSERT_EQ(cache.begin(kClientB, kType, 2), ReplayCache::Admit::kNew);
  cache.complete(kClientB, kType, 2, dummy_reply());
  EXPECT_EQ(cache.size(), 1u);

  // The survivor still replays; the evicted one does not.
  std::shared_ptr<const net::Message> replay;
  EXPECT_EQ(cache.begin(kClientB, kType, 2, &replay), ReplayCache::Admit::kReplay);
  EXPECT_NE(replay, nullptr);
}

TEST(ReplayCacheEdgeTest, ReBeginAfterEvictionReExecutes) {
  ReplayCache cache(1);
  ASSERT_EQ(cache.begin(kClientA, kType, 1), ReplayCache::Admit::kNew);
  cache.complete(kClientA, kType, 1, dummy_reply());
  ASSERT_EQ(cache.begin(kClientB, kType, 2), ReplayCache::Admit::kNew);
  cache.complete(kClientB, kType, 2, dummy_reply());

  // The evicted request is admitted as brand-new: the at-most-once window
  // is bounded by capacity, and a retry past it re-executes.
  std::shared_ptr<const net::Message> replay;
  EXPECT_EQ(cache.begin(kClientA, kType, 1, &replay), ReplayCache::Admit::kNew);
  EXPECT_EQ(replay, nullptr);
  EXPECT_EQ(cache.replays_served(), 0u);
}

TEST(ReplayCacheEdgeTest, InFlightEntryEvictedBeforeComplete) {
  ReplayCache cache(1);
  // Entry A begins but does not complete (asynchronous execution).
  ASSERT_EQ(cache.begin(kClientA, kType, 1), ReplayCache::Admit::kNew);
  // Entry B pushes A out while A is still in flight.
  ASSERT_EQ(cache.begin(kClientB, kType, 2), ReplayCache::Admit::kNew);
  EXPECT_EQ(cache.size(), 1u);

  // B's own retry is suppressed as in-flight (it survived the eviction).
  EXPECT_EQ(cache.begin(kClientB, kType, 2), ReplayCache::Admit::kInFlight);
  EXPECT_EQ(cache.duplicates_suppressed(), 1u);

  // A's late completion must not resurrect the evicted key...
  cache.complete(kClientA, kType, 1, dummy_reply());
  EXPECT_EQ(cache.size(), 1u);

  // ...so a retry of A is admitted fresh, not answered from a ghost entry.
  std::shared_ptr<const net::Message> replay;
  EXPECT_EQ(cache.begin(kClientA, kType, 1, &replay), ReplayCache::Admit::kNew);
  EXPECT_EQ(replay, nullptr);
  EXPECT_EQ(cache.replays_served(), 0u);
}

// --- dispatch table and uniform counters -------------------------------------

class RuntimeKernelTest : public ::testing::Test {
 protected:
  RuntimeKernelTest() : h(small_cluster_spec(), fast_ft_params()) { h.run_s(1.0); }

  KernelHarness h;
};

TEST_F(RuntimeKernelTest, DispatchCountsHandledAndUnhandled) {
  auto& config = h.kernel.config();
  const auto received_before = config.counters().messages_received;
  const auto unhandled_before = config.counters().messages_unhandled;
  const auto gets_before = config.counters().messages_by_type.get("config.get");

  TestClient client(h.cluster, net::NodeId{2});
  auto get = std::make_shared<ConfigGetMsg>();
  get->key = "hardware/partitions";
  get->reply_to = client.address();
  get->request_id = 77;
  client.send_any(config.address(), get);

  // A message type the configuration service never registered.
  auto stray = std::make_shared<EsPublishMsg>();
  client.send_any(config.address(), stray);
  h.run_s(0.5);

  EXPECT_EQ(config.counters().messages_received, received_before + 2);
  EXPECT_EQ(config.counters().messages_unhandled, unhandled_before + 1);
  EXPECT_EQ(config.counters().messages_by_type.get("config.get"), gets_before + 1);
  ASSERT_EQ(client.of_type<ConfigGetReplyMsg>().size(), 1u);
  EXPECT_TRUE(client.of_type<ConfigGetReplyMsg>().front()->found);
}

TEST_F(RuntimeKernelTest, MutatingServeRepliesFromRuntimeCache) {
  auto& config = h.kernel.config();
  TestClient client(h.cluster, net::NodeId{2});
  auto set = std::make_shared<ConfigSetMsg>();
  set->key = "runtime/test";
  set->value = "v1";
  set->reply_to = client.address();
  set->request_id = 101;
  client.send_any(config.address(), set);
  h.run_s(0.5);
  ASSERT_EQ(client.of_type<ConfigSetReplyMsg>().size(), 1u);
  const std::uint64_t version = client.of_type<ConfigSetReplyMsg>().front()->version;

  // Retransmission: replayed reply, identical version, no second apply.
  client.send_any(config.address(), set);
  h.run_s(0.5);
  ASSERT_EQ(client.of_type<ConfigSetReplyMsg>().size(), 2u);
  EXPECT_EQ(client.of_type<ConfigSetReplyMsg>().back()->version, version);
  EXPECT_EQ(config.replay_cache().replays_served(), 1u);
  EXPECT_EQ(config.get("runtime/test"), "v1");
}

// --- one lifecycle: kill -> restart -> restore, across services ---------------

// Property: for any partition and any pre-failure registry size, killing the
// event service loses no subscriptions — GSD supervision detects the death,
// PPM restarts the instance, and the runtime's recover-on-start loop loads
// the registry back from the checkpoint federation.
TEST(RuntimeLifecycleTest, KillRestartRestoreRoundTripAcrossServices) {
  for (std::uint32_t part = 0; part < 2; ++part) {
    const net::PartitionId pid{part};
    const std::size_t subs = 2 + 3 * part;  // vary state size per partition
    KernelHarness h(small_cluster_spec(), fast_ft_params());
    h.run_s(1.0);

    auto& es = h.kernel.event_service(pid);
    std::vector<std::unique_ptr<TestClient>> clients;
    for (std::size_t i = 0; i < subs; ++i) {
      auto client = std::make_unique<TestClient>(
          h.cluster, h.cluster.compute_nodes(pid)[i % 4],
          net::PortId{static_cast<std::uint16_t>(50 + i)});
      Subscription sub;
      sub.consumer = client->address();
      sub.types = {"lifecycle.test"};
      es.subscribe_local(sub);
      clients.push_back(std::move(client));
    }
    h.run_s(2.0);  // checkpoint + federation replication settle
    ASSERT_EQ(es.subscription_count(), subs);
    const auto restores_before = es.counters().restores;

    h.injector.kill_daemon(es);
    ASSERT_FALSE(es.alive());
    h.run_s(8.0);  // detect (<= heartbeat interval) + restart + recover

    EXPECT_TRUE(es.alive()) << "partition " << part;
    EXPECT_EQ(es.counters().restores, restores_before + 1);
    EXPECT_EQ(es.subscription_count(), subs);

    // The restored registry still routes: a publish reaches every consumer.
    Event e;
    e.type = "lifecycle.test";
    es.publish_local(e);
    h.run_s(1.0);
    for (const auto& client : clients) {
      EXPECT_EQ(client->of_type<EsNotifyMsg>().size(), 1u) << "partition " << part;
    }
  }
}

TEST(RuntimeLifecycleTest, MigrationMarksTakeoverAndRestoresState) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(1.0);
  const net::PartitionId pid{1};
  const net::NodeId server = h.cluster.server_node(pid);

  Subscription sub;
  TestClient client(h.cluster, h.cluster.compute_nodes(pid)[0]);
  sub.consumer = client.address();
  sub.types = {"migrate.test"};
  h.kernel.event_service(pid).subscribe_local(sub);
  h.run_s(2.0);

  // Kill the whole server node: the surviving GSDs migrate the partition's
  // services through the directory, which marks the replacement instances
  // as takeovers; the fresh ES pulls its registry from the surviving
  // checkpoint-federation replica.
  h.injector.crash_node(server);
  h.run_s(40.0);

  auto& fresh = h.kernel.event_service(pid);
  EXPECT_TRUE(fresh.alive());
  EXPECT_NE(fresh.node_id(), server);
  EXPECT_EQ(h.cluster.partition_of(fresh.node_id()), pid);
  EXPECT_GE(fresh.counters().takeovers, 1u);
  EXPECT_GE(fresh.counters().restores, 1u);
  EXPECT_EQ(fresh.subscription_count(), 1u);
}

// --- per-service stats published into the bulletin ----------------------------

TEST(RuntimeStatsTest, StatsRowsReachBulletinAndApi) {
  auto params = fast_ft_params();
  params.service_stats_interval = 1 * sim::kSecond;
  KernelHarness h(small_cluster_spec(), params);
  h.run_s(3.5);

  const auto rows = h.kernel.bulletin(net::PartitionId{0}).service_stats();
  ASSERT_FALSE(rows.empty());
  bool saw_es = false;
  for (const auto& rec : rows) {
    if (rec.row.kind == ServiceKind::kEventService) {
      saw_es = true;
      EXPECT_GT(rec.row.messages_received, 0u);
      EXPECT_EQ(rec.row.partition, net::PartitionId{0});
    }
  }
  EXPECT_TRUE(saw_es);

  // The same rows through the uniform client interface.
  KernelApi api(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0],
                h.kernel);
  bool done = false;
  api.service_stats([&](net::Result<std::vector<ServiceStatsRecord>> r) {
    done = true;
    EXPECT_EQ(r.status, net::Status::kOk);
    EXPECT_FALSE(r.value.empty());
  });
  h.run_s(1.0);
  EXPECT_TRUE(done);
}

// --- acceptance: a new service needs only the runtime -------------------------

// A toy service written against ServiceRuntime alone: one message type, one
// counter of checkpointed state. Registering it as an extension and putting
// it under GSD supervision is ALL that is needed for failover — no edits to
// the group service, the PPM, or the kernel wiring.
struct ToyPokeMsg final : net::Message {
  PHOENIX_MESSAGE_TYPE("toy.poke")
  std::size_t wire_size() const noexcept override { return 1; }
};

constexpr net::PortId kToyPort{60};

class ToyService final : public ServiceRuntime {
 public:
  ToyService(cluster::Cluster& cluster, net::NodeId node,
             ServiceDirectory* directory, const FtParams* params)
      : ServiceRuntime(cluster, "toy", node, kToyPort, directory, params,
                       Options{.kind = ServiceKind::kEventService,
                               .partition = cluster.partition_of(node),
                               .checkpoint_namespace = "toy",
                               .announce_up = true,
                               .recover_on_start = true,
                               .extension = "toy"}) {
    on<ToyPokeMsg>([this](const ToyPokeMsg&) {
      ++pokes_;
      mark_dirty();
    });
  }

  std::uint64_t pokes() const noexcept { return pokes_; }

 private:
  std::string snapshot() const override { return std::to_string(pokes_); }
  void restore(const std::string& data) override { pokes_ = std::stoull(data); }

  std::uint64_t pokes_ = 0;
};

TEST(RuntimeExtensionTest, ToyServiceFailsOverWithoutGroupServiceEdits) {
  KernelHarness h(small_cluster_spec(), fast_ft_params());
  h.run_s(1.0);
  const net::PartitionId pid{0};
  const net::NodeId server = h.cluster.server_node(pid);

  h.kernel.register_extension("toy", [&](net::NodeId node) {
    return std::make_unique<ToyService>(h.cluster, node, &h.kernel,
                                        &h.kernel.params());
  });
  auto* toy = static_cast<ToyService*>(h.kernel.create_extension("toy", server));
  ASSERT_NE(toy, nullptr);
  toy->start();
  h.kernel.gsd(pid).supervise(
      SupervisedSpec{"toy", ServiceKind::kEventService, "toy", kToyPort});

  TestClient client(h.cluster, h.cluster.compute_nodes(pid)[0]);
  for (int i = 0; i < 3; ++i) {
    client.send_any({server, kToyPort}, std::make_shared<ToyPokeMsg>());
  }
  h.run_s(2.0);
  EXPECT_EQ(toy->pokes(), 3u);

  // Kill it. Existing supervision machinery must bring it back with state.
  h.injector.kill_daemon(*toy);
  h.run_s(8.0);
  EXPECT_TRUE(toy->alive());
  EXPECT_EQ(toy->pokes(), 3u);  // restored from its checkpoint
  EXPECT_GE(toy->counters().restores, 1u);

  // Still serving after the round trip.
  client.send_any({server, kToyPort}, std::make_shared<ToyPokeMsg>());
  h.run_s(1.0);
  EXPECT_EQ(toy->pokes(), 4u);
}

}  // namespace
}  // namespace phoenix::kernel
