// Deep meta-group ring tests: the paper's §4.3 takeover chain ("In case of
// failure of Leader, other members of meta-group select Princess to take
// over it. If Princess fails, the next member to Princess will take over
// it. If one of the members fails, the member next to it will take over
// it."), tombstone semantics, and join ordering.
#include <gtest/gtest.h>

#include "kernel_fixture.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;

cluster::ClusterSpec ring5_spec() {
  cluster::ClusterSpec spec;
  spec.partitions = 5;
  spec.computes_per_partition = 2;
  spec.backups_per_partition = 1;
  return spec;
}

class RingTest : public ::testing::Test {
 protected:
  RingTest() : h(ring5_spec(), fast_ft_params()) { h.run_s(5.0); }

  net::PartitionId leader_partition() {
    for (std::uint32_t p = 0; p < 5; ++p) {
      if (h.kernel.gsd(net::PartitionId{p}).alive() &&
          h.kernel.gsd(net::PartitionId{p}).is_leader()) {
        return net::PartitionId{p};
      }
    }
    return net::PartitionId{};
  }

  KernelHarness h;
};

TEST_F(RingTest, LeaderTakeoverChainFollowsThePaper) {
  // Kill leaders one after another; leadership must pass to the Princess
  // each time, i.e. walk 0 -> 1 -> 2 in the original ring order.
  ASSERT_EQ(leader_partition(), net::PartitionId{0});

  h.injector.kill_daemon(h.kernel.gsd(net::PartitionId{0}));
  h.run_s(8.0);  // detect + takeover, before the dead one rejoins
  EXPECT_EQ(leader_partition(), net::PartitionId{1});

  h.run_s(20.0);  // partition 0's GSD restarts and rejoins at the tail
  EXPECT_EQ(leader_partition(), net::PartitionId{1});
  const auto& view = h.kernel.gsd(net::PartitionId{1}).view();
  ASSERT_EQ(view.members.size(), 5u);
  EXPECT_EQ(view.members.back().partition, net::PartitionId{0});  // tail

  h.injector.kill_daemon(h.kernel.gsd(net::PartitionId{1}));
  h.run_s(8.0);
  EXPECT_EQ(leader_partition(), net::PartitionId{2});
}

TEST_F(RingTest, PrincessFailurePromotesNextMember) {
  ASSERT_TRUE(h.kernel.gsd(net::PartitionId{1}).is_princess());
  h.injector.kill_daemon(h.kernel.gsd(net::PartitionId{1}));
  h.run_s(8.0);
  // Leader unchanged; the member next to the Princess becomes Princess.
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{0}).is_leader());
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{2}).is_princess());
}

TEST_F(RingTest, MiddleMemberFailureHandledByItsSuccessor) {
  // Partition 3's ring successor is partition 4; after killing 3, the
  // failure record must exist and 4 must have re-pointed its monitoring.
  h.injector.kill_daemon(h.kernel.gsd(net::PartitionId{3}));
  h.run_s(8.0);
  const auto record = h.kernel.fault_log().last("GSD");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->partition, net::PartitionId{3});
  // The surviving ring is 0,1,2,4: partition 4's predecessor is now 2.
  const auto& view = h.kernel.gsd(net::PartitionId{4}).view();
  EXPECT_EQ(view.predecessor_of(net::PartitionId{4})->partition,
            net::PartitionId{2});
}

TEST_F(RingTest, RejoinOrderIsJoinOrder) {
  // Kill partitions 2 and 3; they rejoin in recovery order at the tail.
  h.injector.kill_daemon(h.kernel.gsd(net::PartitionId{2}));
  h.run_s(15.0);
  h.injector.kill_daemon(h.kernel.gsd(net::PartitionId{3}));
  h.run_s(25.0);

  const auto& view = h.kernel.gsd(net::PartitionId{0}).view();
  ASSERT_EQ(view.members.size(), 5u);
  // Original order 0,1,4 preserved at the head; 2 rejoined before 3 died,
  // so the tail is ...,2,3.
  EXPECT_EQ(view.members[0].partition, net::PartitionId{0});
  EXPECT_EQ(view.members[1].partition, net::PartitionId{1});
  EXPECT_EQ(view.members[2].partition, net::PartitionId{4});
  EXPECT_EQ(view.members[3].partition, net::PartitionId{2});
  EXPECT_EQ(view.members[4].partition, net::PartitionId{3});
}

TEST_F(RingTest, TombstonedIncarnationCannotReenter) {
  auto& gsd2 = h.kernel.gsd(net::PartitionId{2});
  const std::uint64_t old_incarnation = gsd2.incarnation();
  h.injector.kill_daemon(gsd2);
  h.run_s(20.0);  // removed, restarted, rejoined

  // The rejoined instance has a strictly newer incarnation.
  EXPECT_GT(h.kernel.gsd(net::PartitionId{2}).incarnation(), old_incarnation);
  const auto& view = h.kernel.gsd(net::PartitionId{0}).view();
  const auto idx = view.index_of(net::PartitionId{2});
  ASSERT_TRUE(idx.has_value());
  EXPECT_GT(view.members[*idx].incarnation, old_incarnation);
}

TEST_F(RingTest, ViewIdsMonotonicallyIncrease) {
  const auto id_before = h.kernel.gsd(net::PartitionId{0}).view().view_id;
  h.injector.kill_daemon(h.kernel.gsd(net::PartitionId{4}));
  h.run_s(20.0);
  const auto id_after = h.kernel.gsd(net::PartitionId{0}).view().view_id;
  EXPECT_GT(id_after, id_before);  // removal + rejoin => at least +2
  // All live members agree on the same view id.
  for (std::uint32_t p = 0; p < 5; ++p) {
    EXPECT_EQ(h.kernel.gsd(net::PartitionId{p}).view().view_id, id_after)
        << "partition " << p;
  }
}

TEST_F(RingTest, RingHeartbeatsFollowTheRingEdges) {
  // Each member's ring traffic goes to its successor only: verify via
  // fabric byte accounting that meta heartbeats exist and the ring scales
  // as one heartbeat per member per interval (not all-to-all).
  h.cluster.fabric().reset_stats();
  h.run_s(20.0);  // 10 intervals at 2 s
  const auto stats = h.cluster.fabric().total_stats();
  ASSERT_TRUE(stats.bytes_by_type.contains("meta.ring_heartbeat"));
  // 5 members x 3 networks x ~10 intervals ~= 150 sends; all-to-all would
  // be ~600.
  const auto hb_bytes = stats.bytes_by_type.at("meta.ring_heartbeat");
  const auto per_msg = net::kWireHeaderBytes + 24;
  const auto msgs = hb_bytes / per_msg;
  EXPECT_GE(msgs, 120u);
  EXPECT_LE(msgs, 200u);
}

}  // namespace
}  // namespace phoenix::kernel
