// Unit tests for the cluster layer: partition layout, node lifecycle,
// process table, daemon registration/crash semantics.
#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <memory>

#include "cluster/daemon.h"

namespace phoenix::cluster {
namespace {

struct NoteMsg final : net::Message {
  int value = 0;
  std::string_view type() const noexcept override { return "test.note"; }
  std::size_t wire_size() const noexcept override { return 4; }
};

class EchoDaemon final : public Daemon {
 public:
  EchoDaemon(Cluster& cluster, net::NodeId node, net::PortId port)
      : Daemon(cluster, "echo", node, port, 0.01) {}

  std::vector<int> received;

 private:
  void handle(const net::Envelope& env) override {
    if (const auto* note = net::message_cast<NoteMsg>(*env.message)) {
      received.push_back(note->value);
    }
  }
};

ClusterSpec small_spec() {
  ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 3;
  spec.backups_per_partition = 1;
  spec.networks = 3;
  return spec;
}

TEST(ClusterLayoutTest, NodeCountsAndRoles) {
  Cluster cluster(small_spec());
  EXPECT_EQ(cluster.node_count(), 10u);  // 2 * (1 + 1 + 3)
  EXPECT_EQ(cluster.node(net::NodeId{0}).role(), NodeRole::kServer);
  EXPECT_EQ(cluster.node(net::NodeId{1}).role(), NodeRole::kBackup);
  EXPECT_EQ(cluster.node(net::NodeId{2}).role(), NodeRole::kCompute);
  EXPECT_EQ(cluster.node(net::NodeId{5}).role(), NodeRole::kServer);
}

TEST(ClusterLayoutTest, PartitionAccessors) {
  Cluster cluster(small_spec());
  EXPECT_EQ(cluster.server_node(net::PartitionId{1}).value, 5u);
  const auto backups = cluster.backup_nodes(net::PartitionId{1});
  ASSERT_EQ(backups.size(), 1u);
  EXPECT_EQ(backups[0].value, 6u);
  const auto computes = cluster.compute_nodes(net::PartitionId{0});
  ASSERT_EQ(computes.size(), 3u);
  EXPECT_EQ(computes[0].value, 2u);
  EXPECT_EQ(computes[2].value, 4u);
  EXPECT_EQ(cluster.partition_nodes(net::PartitionId{0}).size(), 5u);
  EXPECT_EQ(cluster.partition_of(net::NodeId{7}).value, 1u);
  EXPECT_EQ(cluster.partition_of(net::NodeId{4}).value, 0u);
}

TEST(ClusterLayoutTest, ZeroPartitionsRejected) {
  ClusterSpec spec;
  spec.partitions = 0;
  EXPECT_THROW(Cluster{spec}, std::invalid_argument);
}

TEST(NodeTest, ProcessTableLifecycle) {
  Node node(net::NodeId{0}, net::PartitionId{0}, NodeRole::kCompute, 4);
  node.add_process(ProcessInfo{.pid = 1, .name = "a", .owner = "u",
                               .state = ProcessState::kRunning, .cpu_share = 1.5});
  node.add_process(ProcessInfo{.pid = 2, .name = "b", .owner = "u",
                               .state = ProcessState::kRunning, .cpu_share = 0.5});
  EXPECT_EQ(node.running_process_count(), 2u);
  EXPECT_DOUBLE_EQ(node.daemon_cpu_load(), 2.0);

  EXPECT_TRUE(node.terminate_process(1, ProcessState::kExited, 123, 7));
  EXPECT_FALSE(node.terminate_process(1, ProcessState::kExited, 124));  // already done
  EXPECT_FALSE(node.terminate_process(99, ProcessState::kExited, 124)); // unknown
  EXPECT_EQ(node.running_process_count(), 1u);
  const ProcessInfo* info = node.find_process(1);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->state, ProcessState::kExited);
  EXPECT_EQ(info->ended_at, 123u);
  EXPECT_EQ(info->exit_code, 7);

  EXPECT_EQ(node.reap(), 1u);
  EXPECT_EQ(node.find_process(1), nullptr);
  EXPECT_EQ(node.processes().size(), 1u);
}

TEST(DaemonTest, StartStopManagesProcessTable) {
  Cluster cluster(small_spec());
  EchoDaemon daemon(cluster, net::NodeId{2}, net::PortId{50});
  EXPECT_FALSE(daemon.running());
  EXPECT_EQ(cluster.node(net::NodeId{2}).running_process_count(), 0u);

  daemon.start();
  EXPECT_TRUE(daemon.alive());
  EXPECT_EQ(cluster.node(net::NodeId{2}).running_process_count(), 1u);
  EXPECT_GT(daemon.pid(), 0u);

  daemon.stop();
  EXPECT_FALSE(daemon.alive());
  const auto* info = cluster.node(net::NodeId{2}).find_process(daemon.pid());
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->state, ProcessState::kExited);
}

TEST(DaemonTest, MessageRoundTrip) {
  Cluster cluster(small_spec());
  EchoDaemon a(cluster, net::NodeId{2}, net::PortId{50});
  EchoDaemon b(cluster, net::NodeId{3}, net::PortId{50});
  a.start();
  b.start();
  auto msg = std::make_shared<NoteMsg>();
  msg->value = 42;
  cluster.fabric().send(a.address(), b.address(), net::NetworkId{0}, msg);
  cluster.engine().run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0], 42);
}

TEST(DaemonTest, KilledDaemonDropsMessages) {
  Cluster cluster(small_spec());
  EchoDaemon a(cluster, net::NodeId{2}, net::PortId{50});
  EchoDaemon b(cluster, net::NodeId{3}, net::PortId{50});
  a.start();
  b.start();
  b.kill();
  cluster.fabric().send(a.address(), b.address(), net::NetworkId{0},
                        std::make_shared<NoteMsg>());
  cluster.engine().run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(cluster.dead_letters(), 1u);
}

TEST(DaemonTest, UnboundAddressIsDeadLetter) {
  Cluster cluster(small_spec());
  EchoDaemon a(cluster, net::NodeId{2}, net::PortId{50});
  a.start();
  cluster.fabric().send(a.address(), {net::NodeId{3}, net::PortId{60}},
                        net::NetworkId{0}, std::make_shared<NoteMsg>());
  cluster.engine().run();
  EXPECT_EQ(cluster.dead_letters(), 1u);
}

TEST(DaemonTest, DuplicateAddressRejected) {
  Cluster cluster(small_spec());
  EchoDaemon a(cluster, net::NodeId{2}, net::PortId{50});
  EXPECT_THROW(EchoDaemon(cluster, net::NodeId{2}, net::PortId{50}),
               std::logic_error);
}

TEST(DaemonTest, UnbindFreesAddress) {
  Cluster cluster(small_spec());
  auto a = std::make_unique<EchoDaemon>(cluster, net::NodeId{2}, net::PortId{50});
  a->start();
  a->kill();
  a->unbind();
  // Address reusable while the old object still exists.
  EchoDaemon b(cluster, net::NodeId{2}, net::PortId{50});
  b.start();
  EXPECT_EQ(cluster.daemon_at({net::NodeId{2}, net::PortId{50}}), &b);
}

TEST(CrashTest, CrashKillsDaemonsAndProcesses) {
  Cluster cluster(small_spec());
  EchoDaemon daemon(cluster, net::NodeId{2}, net::PortId{50});
  daemon.start();
  auto& node = cluster.node(net::NodeId{2});
  node.add_process(ProcessInfo{.pid = 999, .name = "job", .owner = "u",
                               .state = ProcessState::kRunning});

  cluster.crash_node(net::NodeId{2});
  EXPECT_FALSE(node.alive());
  EXPECT_FALSE(daemon.alive());
  EXPECT_FALSE(daemon.running());
  EXPECT_EQ(node.running_process_count(), 0u);
  EXPECT_FALSE(cluster.fabric().interface_up(net::NodeId{2}, net::NetworkId{0}));

  // Idempotent.
  cluster.crash_node(net::NodeId{2});
  EXPECT_FALSE(node.alive());
}

TEST(CrashTest, RestoreBringsLinksUpButNotDaemons) {
  Cluster cluster(small_spec());
  EchoDaemon daemon(cluster, net::NodeId{2}, net::PortId{50});
  daemon.start();
  cluster.crash_node(net::NodeId{2});
  cluster.restore_node(net::NodeId{2});
  EXPECT_TRUE(cluster.node(net::NodeId{2}).alive());
  EXPECT_TRUE(cluster.fabric().interface_up(net::NodeId{2}, net::NetworkId{0}));
  EXPECT_FALSE(daemon.running());  // recovery is the group service's job
  daemon.start();
  EXPECT_TRUE(daemon.alive());
}

TEST(CrashTest, MessagesToDeadNodeNotDelivered) {
  Cluster cluster(small_spec());
  EchoDaemon a(cluster, net::NodeId{2}, net::PortId{50});
  EchoDaemon b(cluster, net::NodeId{3}, net::PortId{50});
  a.start();
  b.start();
  cluster.crash_node(net::NodeId{3});
  EXPECT_FALSE(cluster.fabric().send(a.address(), b.address(), net::NetworkId{0},
                                     std::make_shared<NoteMsg>()));
}

TEST(ClusterTest, PidsAreUnique) {
  Cluster cluster(small_spec());
  const Pid p1 = cluster.next_pid();
  const Pid p2 = cluster.next_pid();
  EXPECT_NE(p1, p2);
}

TEST(ClusterTest, DaemonsOnNodeLists) {
  Cluster cluster(small_spec());
  EchoDaemon a(cluster, net::NodeId{2}, net::PortId{50});
  EchoDaemon b(cluster, net::NodeId{2}, net::PortId{51});
  EchoDaemon c(cluster, net::NodeId{3}, net::PortId{50});
  EXPECT_EQ(cluster.daemons_on(net::NodeId{2}).size(), 2u);
  EXPECT_EQ(cluster.daemons_on(net::NodeId{3}).size(), 1u);
  EXPECT_TRUE(cluster.daemons_on(net::NodeId{4}).empty());
}

TEST(NodeRoleTest, ToString) {
  EXPECT_EQ(to_string(NodeRole::kServer), "server");
  EXPECT_EQ(to_string(NodeRole::kBackup), "backup");
  EXPECT_EQ(to_string(NodeRole::kCompute), "compute");
  EXPECT_EQ(to_string(ProcessState::kRunning), "running");
  EXPECT_EQ(to_string(ProcessState::kKilled), "killed");
}

}  // namespace
}  // namespace phoenix::cluster
