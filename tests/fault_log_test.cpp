// FaultLog unit tests: record matching and recovery-marking semantics the
// whole fault-handling pipeline depends on.
#include "kernel/fault_log.h"

#include <gtest/gtest.h>

namespace phoenix::kernel {
namespace {

FaultRecord record(const char* component, net::NodeId node,
                   net::PartitionId partition,
                   FaultKind kind = FaultKind::kProcessFailure) {
  FaultRecord r;
  r.component = component;
  r.kind = kind;
  r.node = node;
  r.partition = partition;
  r.detected_at = 100;
  r.diagnosed_at = 200;
  return r;
}

TEST(FaultLogTest, AppendAndLast) {
  FaultLog log;
  EXPECT_FALSE(log.last("WD").has_value());
  log.append(record("WD", net::NodeId{1}, net::PartitionId{0}));
  log.append(record("ES", net::NodeId{2}, net::PartitionId{0}));
  log.append(record("WD", net::NodeId{3}, net::PartitionId{1}));

  ASSERT_TRUE(log.last("WD").has_value());
  EXPECT_EQ(log.last("WD")->node.value, 3u);  // newest match
  EXPECT_EQ(log.last("ES")->node.value, 2u);
  EXPECT_FALSE(log.last("DB").has_value());
  EXPECT_EQ(log.records().size(), 3u);
}

TEST(FaultLogTest, LastWithKindFilter) {
  FaultLog log;
  log.append(record("WD", net::NodeId{1}, net::PartitionId{0},
                    FaultKind::kNodeFailure));
  log.append(record("WD", net::NodeId{2}, net::PartitionId{0},
                    FaultKind::kProcessFailure));
  EXPECT_EQ(log.last("WD", FaultKind::kNodeFailure)->node.value, 1u);
  EXPECT_EQ(log.last("WD", FaultKind::kProcessFailure)->node.value, 2u);
  EXPECT_FALSE(log.last("WD", FaultKind::kNetworkFailure).has_value());
}

TEST(FaultLogTest, MarkRecoveredByNode) {
  FaultLog log;
  log.append(record("WD", net::NodeId{1}, net::PartitionId{0}));
  log.append(record("WD", net::NodeId{2}, net::PartitionId{0}));

  EXPECT_TRUE(log.mark_recovered("WD", net::NodeId{1}, 500));
  EXPECT_FALSE(log.last("WD")->recovered);  // node 2 untouched
  const auto r1 = log.records()[0];
  EXPECT_TRUE(r1.recovered);
  EXPECT_EQ(r1.recovered_at, 500u);

  // Already-recovered records do not match again.
  EXPECT_FALSE(log.mark_recovered("WD", net::NodeId{1}, 600));
  // Unknown component/node.
  EXPECT_FALSE(log.mark_recovered("ES", net::NodeId{1}, 600));
  EXPECT_FALSE(log.mark_recovered("WD", net::NodeId{9}, 600));
}

TEST(FaultLogTest, MarkRecoveredNewestFirst) {
  FaultLog log;
  log.append(record("WD", net::NodeId{1}, net::PartitionId{0}));
  log.append(record("WD", net::NodeId{1}, net::PartitionId{0}));
  EXPECT_TRUE(log.mark_recovered("WD", net::NodeId{1}, 500));
  // The NEWEST open record was closed.
  EXPECT_TRUE(log.records()[1].recovered);
  EXPECT_FALSE(log.records()[0].recovered);
}

TEST(FaultLogTest, MarkRecoveredByPartition) {
  FaultLog log;
  // Migration case: the recovered instance lives on a different node.
  log.append(record("GSD", net::NodeId{0}, net::PartitionId{2},
                    FaultKind::kNodeFailure));
  EXPECT_TRUE(log.mark_recovered_partition("GSD", net::PartitionId{2}, 900));
  EXPECT_TRUE(log.records()[0].recovered);
  EXPECT_FALSE(log.mark_recovered_partition("GSD", net::PartitionId{2}, 950));
  EXPECT_FALSE(log.mark_recovered_partition("GSD", net::PartitionId{3}, 950));
}

TEST(FaultLogTest, ClearEmptiesEverything) {
  FaultLog log;
  log.append(record("WD", net::NodeId{1}, net::PartitionId{0}));
  log.clear();
  EXPECT_TRUE(log.records().empty());
  EXPECT_FALSE(log.last("WD").has_value());
}

TEST(FaultKindTest, ToString) {
  EXPECT_EQ(to_string(FaultKind::kProcessFailure), "process");
  EXPECT_EQ(to_string(FaultKind::kNodeFailure), "node");
  EXPECT_EQ(to_string(FaultKind::kNetworkFailure), "network");
}

}  // namespace
}  // namespace phoenix::kernel
