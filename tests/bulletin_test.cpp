// Data bulletin tests: detector reports, partition/cluster queries through
// the federation's single access point, degraded answers when an instance
// is down, usage aggregation.
#include "kernel/bulletin/data_bulletin.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::kernel {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::TestClient;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class BulletinTest : public ::testing::Test {
 protected:
  BulletinTest() : h(small_cluster_spec(), fast_ft_params()) {
    // Two detector sampling rounds populate every partition's instance.
    h.run_s(3.0);
  }

  DataBulletin& db(std::uint32_t p) {
    return h.kernel.bulletin(net::PartitionId{p});
  }

  const DbQueryReplyMsg* query(TestClient& client, bool cluster_scope,
                               BulletinTable table = BulletinTable::kBoth,
                               std::uint32_t partition = 0) {
    auto q = std::make_shared<DbQueryMsg>();
    q->query_id = 1234;
    q->table = table;
    q->cluster_scope = cluster_scope;
    q->reply_to = client.address();
    client.send_any(db(partition).address(), q);
    h.run_s(2.0);
    return client.last_of_type<DbQueryReplyMsg>();
  }

  KernelHarness h;
};

TEST_F(BulletinTest, DetectorsPopulateNodeTable) {
  // Each partition instance holds one row per partition node.
  EXPECT_EQ(db(0).node_row_count(), 6u);
  EXPECT_EQ(db(1).node_row_count(), 6u);
}

TEST_F(BulletinTest, PartitionScopeReturnsOwnRowsOnly) {
  TestClient client(h.cluster, net::NodeId{2});
  const auto* reply = query(client, /*cluster_scope=*/false);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->node_rows.size(), 6u);
  EXPECT_EQ(reply->partitions_included, 1u);
  for (const auto& row : reply->node_rows) {
    EXPECT_EQ(row.partition.value, 0u);
  }
}

TEST_F(BulletinTest, ClusterScopeMergesAllPartitions) {
  TestClient client(h.cluster, net::NodeId{2});
  const auto* reply = query(client, /*cluster_scope=*/true);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->node_rows.size(), 12u);
  EXPECT_EQ(reply->partitions_included, 2u);
}

TEST_F(BulletinTest, AnyInstanceIsAnAccessPoint) {
  // Same cluster-wide answer when asking partition 1's instance.
  TestClient client(h.cluster, net::NodeId{8});
  const auto* reply = query(client, true, BulletinTable::kBoth, 1);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->node_rows.size(), 12u);
}

TEST_F(BulletinTest, DeadInstanceDegradesToRemainingPartitions) {
  h.kernel.bulletin(net::PartitionId{1}).kill();
  TestClient client(h.cluster, net::NodeId{2});
  const auto* reply = query(client, true);
  ASSERT_NE(reply, nullptr);
  // Only partition 0's rows: "only the state of one partition can't be
  // obtained" (paper §4.4).
  EXPECT_EQ(reply->node_rows.size(), 6u);
  EXPECT_EQ(reply->partitions_included, 1u);
}

TEST_F(BulletinTest, AppTableCarriesUserProcesses) {
  // Launch a user process on a compute node; the app detector exports it.
  auto& ppm = h.kernel.ppm(net::NodeId{3});
  ppm.spawn_local(ProcessSpec{"userjob", "alice", 1.0, 60 * sim::kSecond, 0});
  h.run_s(3.0);

  TestClient client(h.cluster, net::NodeId{2});
  const auto* reply = query(client, true, BulletinTable::kApps);
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->node_rows.empty());
  bool found = false;
  for (const auto& app : reply->app_rows) {
    if (app.name() == "userjob" && app.owner() == "alice") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(BulletinTest, KernelDaemonsExcludedFromAppTable) {
  TestClient client(h.cluster, net::NodeId{2});
  const auto* reply = query(client, true, BulletinTable::kApps);
  ASSERT_NE(reply, nullptr);
  for (const auto& app : reply->app_rows) {
    EXPECT_NE(app.owner(), "kernel") << app.name();
  }
}

TEST_F(BulletinTest, NodesTableOnlyOmitsApps) {
  TestClient client(h.cluster, net::NodeId{2});
  const auto* reply = query(client, true, BulletinTable::kNodes);
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->node_rows.empty());
  EXPECT_TRUE(reply->app_rows.empty());
}

TEST_F(BulletinTest, ReportOverwritesPerNode) {
  NodeRecord rec;
  rec.node = net::NodeId{2};
  rec.partition = net::PartitionId{0};
  rec.usage.cpu_pct = 99.0;
  rec.updated_at = h.cluster.now();
  db(0).report_local(rec, {});
  db(0).report_local(rec, {});
  // Still one row per node.
  std::size_t count = 0;
  for (const auto& row : db(0).node_rows()) {
    if (row.node == net::NodeId{2}) ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(SummarizeTest, Aggregates) {
  std::vector<NodeRecord> nodes(4);
  for (std::size_t i = 0; i < 4; ++i) {
    nodes[i].usage.cpu_pct = 10.0 * static_cast<double>(i + 1);  // 10..40
    nodes[i].usage.mem_pct = 50.0;
    nodes[i].usage.swap_pct = 1.0;
    nodes[i].alive = i != 3;
  }
  std::vector<AppRecord> apps(3);
  const UsageSummary s = summarize(nodes, apps);
  EXPECT_EQ(s.node_count, 4u);
  EXPECT_EQ(s.alive_count, 3u);
  EXPECT_DOUBLE_EQ(s.avg_cpu_pct, 25.0);
  EXPECT_DOUBLE_EQ(s.avg_mem_pct, 50.0);
  EXPECT_DOUBLE_EQ(s.avg_swap_pct, 1.0);
  EXPECT_EQ(s.app_count, 3u);
}

TEST(SummarizeTest, EmptyInput) {
  const UsageSummary s = summarize({}, {});
  EXPECT_EQ(s.node_count, 0u);
  EXPECT_DOUBLE_EQ(s.avg_cpu_pct, 0.0);
}

}  // namespace
}  // namespace phoenix::kernel
