// Tracer tests: recording semantics, bounds, filtering, and the GSD's
// protocol instrumentation.
#include "sim/trace.h"

#include <gtest/gtest.h>

#include "kernel_fixture.h"

namespace phoenix::sim {
namespace {

TEST(TracerTest, DisabledByDefault) {
  Tracer tracer;
  tracer.record(1, TraceLevel::kInfo, "x", "message");
  EXPECT_TRUE(tracer.entries().empty());
  EXPECT_EQ(tracer.recorded_total(), 0u);
}

TEST(TracerTest, RecordsWhenEnabled) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record(5, TraceLevel::kWarn, "gsd/0", "something happened");
  ASSERT_EQ(tracer.entries().size(), 1u);
  EXPECT_EQ(tracer.entries()[0].at, 5u);
  EXPECT_EQ(tracer.entries()[0].component, "gsd/0");
  EXPECT_EQ(tracer.recorded_total(), 1u);
}

TEST(TracerTest, MinLevelFilters) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_min_level(TraceLevel::kWarn);
  tracer.record(1, TraceLevel::kDebug, "a", "dropped");
  tracer.record(2, TraceLevel::kInfo, "a", "dropped");
  tracer.record(3, TraceLevel::kWarn, "a", "kept");
  ASSERT_EQ(tracer.entries().size(), 1u);
  EXPECT_EQ(tracer.entries()[0].message, "kept");
}

TEST(TracerTest, CapacityBounds) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(10);
  for (int i = 0; i < 100; ++i) {
    tracer.record(static_cast<SimTime>(i), TraceLevel::kInfo, "c",
                  std::to_string(i));
  }
  EXPECT_EQ(tracer.entries().size(), 10u);
  EXPECT_EQ(tracer.entries().front().message, "90");  // oldest evicted
  EXPECT_EQ(tracer.recorded_total(), 100u);
}

TEST(TracerTest, ComponentPrefixFilter) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record(1, TraceLevel::kInfo, "gsd/0", "a");
  tracer.record(2, TraceLevel::kInfo, "gsd/1", "b");
  tracer.record(3, TraceLevel::kInfo, "es/0", "c");
  EXPECT_EQ(tracer.filtered("gsd/").size(), 2u);
  EXPECT_EQ(tracer.filtered("es/").size(), 1u);
  EXPECT_EQ(tracer.filtered("").size(), 3u);
  EXPECT_EQ(tracer.filtered("gsd/", 1).size(), 1u);
}

TEST(TracerTest, EvictionPreservesArrivalOrder) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(3);
  for (int i = 0; i < 7; ++i) {
    tracer.record(static_cast<SimTime>(i), TraceLevel::kInfo, "c",
                  std::to_string(i));
  }
  // Exactly the newest 3, still oldest-to-newest within the window.
  ASSERT_EQ(tracer.entries().size(), 3u);
  EXPECT_EQ(tracer.entries()[0].message, "4");
  EXPECT_EQ(tracer.entries()[1].message, "5");
  EXPECT_EQ(tracer.entries()[2].message, "6");
}

TEST(TracerTest, ShrinkingCapacityEvictsOldestImmediately) {
  Tracer tracer;
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.record(static_cast<SimTime>(i), TraceLevel::kInfo, "c",
                  std::to_string(i));
  }
  tracer.set_capacity(4);  // shrink below current size
  ASSERT_EQ(tracer.entries().size(), 4u);
  EXPECT_EQ(tracer.entries().front().message, "6");
  EXPECT_EQ(tracer.entries().back().message, "9");
  // Growing back does not resurrect anything.
  tracer.set_capacity(100);
  EXPECT_EQ(tracer.entries().size(), 4u);
}

TEST(TracerTest, MinLevelErrorKeepsOnlyOperatorGradeEntries) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_min_level(TraceLevel::kError);
  tracer.record(1, TraceLevel::kWarn, "api", "call 7 failed: timeout");
  tracer.record(2, TraceLevel::kError, "api",
                "call 9 failed: retries_exhausted");
  tracer.record(3, TraceLevel::kError, "ckpt/1", "takeover");
  ASSERT_EQ(tracer.entries().size(), 2u);
  EXPECT_EQ(tracer.entries()[0].level, TraceLevel::kError);
  // Filtered entries never include the suppressed warn, and suppressed
  // entries do not count toward recorded_total (they were never recorded).
  EXPECT_EQ(tracer.filtered("api").size(), 1u);
  EXPECT_EQ(tracer.recorded_total(), 2u);
}

TEST(TracerTest, PrefixFilterDistinguishesOverlappingComponents) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record(1, TraceLevel::kInfo, "gsd/1", "a");
  tracer.record(2, TraceLevel::kInfo, "gsd/10", "b");
  tracer.record(3, TraceLevel::kInfo, "gsd/12", "c");
  // Prefix semantics: "gsd/1" matches gsd/1 AND gsd/10, gsd/12 — callers
  // wanting exactly one daemon must rely on ids that are not prefixes of
  // each other or post-filter; this pins the documented behavior.
  EXPECT_EQ(tracer.filtered("gsd/1").size(), 3u);
  EXPECT_EQ(tracer.filtered("gsd/10").size(), 1u);
  EXPECT_EQ(tracer.filtered("gsd/12").size(), 1u);
  EXPECT_EQ(tracer.filtered("gsd/2").size(), 0u);
}

TEST(TracerTest, DumpRenders) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record(2'000'000, TraceLevel::kWarn, "gsd/0", "node 5 silent");
  const std::string dump = tracer.dump();
  EXPECT_NE(dump.find("2.00s"), std::string::npos);
  EXPECT_NE(dump.find("warn"), std::string::npos);
  EXPECT_NE(dump.find("node 5 silent"), std::string::npos);
}

TEST(TracerIntegrationTest, GsdProtocolTransitionsTraced) {
  phoenix::testing::KernelHarness h(phoenix::testing::small_cluster_spec(),
                                    phoenix::testing::fast_ft_params());
  h.cluster.tracer().set_enabled(true);
  h.run_s(3.0);

  h.injector.crash_node(h.cluster.compute_nodes(net::PartitionId{0})[1]);
  h.run_s(12.0);

  bool saw_silent = false, saw_diagnosis = false;
  for (const auto& entry : h.cluster.tracer().filtered("gsd/0")) {
    if (entry.message.find("silent on every network") != std::string::npos) {
      saw_silent = true;
    }
    if (entry.message.find("diagnosed node failure") != std::string::npos) {
      saw_diagnosis = true;
    }
  }
  EXPECT_TRUE(saw_silent);
  EXPECT_TRUE(saw_diagnosis);
}

TEST(TracerIntegrationTest, MigrationTraced) {
  phoenix::testing::KernelHarness h(phoenix::testing::small_cluster_spec(),
                                    phoenix::testing::fast_ft_params());
  h.cluster.tracer().set_enabled(true);
  h.run_s(3.0);
  h.injector.crash_node(h.cluster.server_node(net::PartitionId{1}));
  h.run_s(20.0);

  bool saw_migration = false;
  for (const auto& entry : h.cluster.tracer().filtered("gsd/")) {
    if (entry.message.find("migrating partition 1") != std::string::npos) {
      saw_migration = true;
    }
  }
  EXPECT_TRUE(saw_migration);
}

TEST(TracerIntegrationTest, DisabledTracerStaysEmptyThroughFaults) {
  phoenix::testing::KernelHarness h(phoenix::testing::small_cluster_spec(),
                                    phoenix::testing::fast_ft_params());
  h.run_s(3.0);
  h.injector.crash_node(h.cluster.compute_nodes(net::PartitionId{0})[0]);
  h.run_s(12.0);
  EXPECT_TRUE(h.cluster.tracer().entries().empty());
}

}  // namespace
}  // namespace phoenix::sim
