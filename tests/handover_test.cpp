// Planned-handover tests: relocating a partition's services for
// maintenance, then safely shutting down the old server node.
#include <gtest/gtest.h>

#include "admin/admin_console.h"
#include "kernel_fixture.h"
#include "test_client.h"

namespace phoenix::admin {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;
using phoenix::testing::small_cluster_spec;

class HandoverTest : public ::testing::Test {
 protected:
  HandoverTest()
      : h(small_cluster_spec(), fast_ft_params()),
        console(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0],
                h.kernel) {
    h.run_s(3.0);
  }

  KernelHarness h;
  AdminConsole console;
};

TEST_F(HandoverTest, MovesAllPartitionServices) {
  const net::NodeId old_server = h.cluster.server_node(net::PartitionId{1});
  const net::NodeId backup = h.cluster.backup_nodes(net::PartitionId{1})[0];

  ASSERT_TRUE(console.handover_partition(net::PartitionId{1}, backup));
  h.run_s(15.0);

  EXPECT_EQ(h.kernel.gsd(net::PartitionId{1}).node_id(), backup);
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{1}).alive());
  EXPECT_EQ(h.kernel.event_service(net::PartitionId{1}).node_id(), backup);
  EXPECT_TRUE(h.kernel.event_service(net::PartitionId{1}).alive());
  EXPECT_TRUE(h.kernel.checkpoint_service(net::PartitionId{1}).alive());
  EXPECT_TRUE(h.kernel.bulletin(net::PartitionId{1}).alive());

  // Ring intact with both members, WDs re-pointed, old server monitorable.
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{0}).view().members.size(), 2u);
  EXPECT_EQ(h.kernel.watch_daemon(old_server).gsd_address().node, backup);
}

TEST_F(HandoverTest, NoNodeFailureRecordsFromPlannedHandover) {
  const net::NodeId backup = h.cluster.backup_nodes(net::PartitionId{1})[0];
  ASSERT_TRUE(console.handover_partition(net::PartitionId{1}, backup));
  h.run_s(15.0);
  for (const auto& record : h.kernel.fault_log().records()) {
    EXPECT_NE(record.kind, kernel::FaultKind::kNodeFailure) << record.component;
  }
}

TEST_F(HandoverTest, OldServerSafeToShutDownAfterHandover) {
  const net::NodeId old_server = h.cluster.server_node(net::PartitionId{1});
  const net::NodeId backup = h.cluster.backup_nodes(net::PartitionId{1})[0];
  ASSERT_TRUE(console.handover_partition(net::PartitionId{1}, backup));
  h.run_s(15.0);

  // Power the old server off: the partition's services are elsewhere, so
  // this is an ordinary compute-node-style loss.
  h.injector.crash_node(old_server);
  h.run_s(10.0);
  EXPECT_TRUE(h.kernel.gsd(net::PartitionId{1}).alive());
  EXPECT_TRUE(h.kernel.event_service(net::PartitionId{1}).alive());
  EXPECT_EQ(h.kernel.gsd(net::PartitionId{0}).view().members.size(), 2u);
}

TEST_F(HandoverTest, ValidationRejectsBadTargets) {
  // Wrong partition.
  EXPECT_FALSE(console.handover_partition(
      net::PartitionId{1}, h.cluster.compute_nodes(net::PartitionId{0})[0]));
  // Dead target.
  const net::NodeId backup = h.cluster.backup_nodes(net::PartitionId{1})[0];
  h.injector.crash_node(backup);
  EXPECT_FALSE(console.handover_partition(net::PartitionId{1}, backup));
  // Already hosting.
  EXPECT_FALSE(console.handover_partition(
      net::PartitionId{1}, h.cluster.server_node(net::PartitionId{1})));
  // Unknown partition / node.
  EXPECT_FALSE(console.handover_partition(net::PartitionId{99}, backup));
}

TEST_F(HandoverTest, EventConsumersSurviveHandover) {
  // A consumer registered before the handover keeps receiving events after
  // it (registry recovered through the checkpoint federation).
  phoenix::testing::TestClient consumer(
      h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[1]);
  kernel::Subscription sub;
  sub.consumer = consumer.address();
  sub.types = {"handover.test"};
  h.kernel.event_service(net::PartitionId{1}).subscribe_local(sub);
  h.run_s(2.0);

  const net::NodeId backup = h.cluster.backup_nodes(net::PartitionId{1})[0];
  ASSERT_TRUE(console.handover_partition(net::PartitionId{1}, backup));
  h.run_s(15.0);

  kernel::Event e;
  e.type = "handover.test";
  h.kernel.event_service(net::PartitionId{1}).publish_local(e);
  h.run_s(1.0);
  EXPECT_EQ(consumer.of_type<kernel::EsNotifyMsg>().size(), 1u);
}

}  // namespace
}  // namespace phoenix::admin
