// End-to-end causal tracing acceptance test (DESIGN.md §12).
//
// Drives one federated KernelApi call through the full degraded path the
// observability plane exists to explain:
//
//   - the client's home checkpoint server is dead when the call is issued,
//     so attempt 1 ring-walks to the peer partition (federation reroute);
//   - the peer serves it, but the reply is lost on the wire (targeted drop
//     standing in for packet loss);
//   - the retry hits the peer's replay cache, which answers from the dedup
//     path ("replay" serve outcome) without re-executing the mutation;
//   - the retransmitted reply completes the call.
//
// The recorded spans must form ONE connected tree rooted at the call span,
// with parent/child sim-time containment, covering reroute + retry + lost
// hop + dedup replay. This is the cross-layer contract: api, fabric, and
// ServiceRuntime each record their own spans, and they only line up if the
// ambient TraceContext survived every boundary (send closures, retry
// timers, replay-cache answers).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "kernel/api.h"
#include "kernel_fixture.h"
#include "obs/span_store.h"

namespace phoenix {
namespace {

using kernel::KernelApi;

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

TEST(ObsE2eTest, DegradedCallYieldsSingleConnectedSpanTree) {
  testing::KernelHarness h(testing::small_cluster_spec(),
                           testing::fast_ft_params());
  h.cluster.span_store().set_enabled(true);
  h.cluster.metrics().set_enabled(true);
  h.cluster.tracer().set_enabled(true);
  h.run_s(3.0);

  KernelApi api(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0],
                h.kernel);

  // Kill the home server before the call: recovery has not run yet, so the
  // directory still names the dead node and attempt 1 must ring-walk to
  // partition 0's checkpoint instance.
  h.injector.crash_node(h.cluster.server_node(net::PartitionId{1}));
  // ...and the peer's first reply dies on the wire.
  h.injector.drop_next_to(api.address(), 1);

  bool completed = false;
  net::Status status = net::Status::kUnreachable;
  api.checkpoint_save("e2e", "key", "data",
                      [&](KernelApi::Result<std::uint64_t> r) {
                        completed = true;
                        status = r.status;
                      },
                      net::CallOptions{.deadline = 20 * sim::kSecond,
                                       .max_retries = 6});
  h.run_s(30.0);

  ASSERT_TRUE(completed);
  EXPECT_EQ(status, net::Status::kOk);
  EXPECT_GE(api.reroutes(), 1u);
  EXPECT_GE(api.retries_sent(), 1u);

  // --- locate the call's trace -------------------------------------------
  const auto all = h.cluster.span_store().spans();
  const obs::Span* root = nullptr;
  for (const obs::Span& s : all) {
    if (s.name == "call:checkpoint_save") {
      ASSERT_EQ(root, nullptr) << "exactly one call span expected";
      root = &s;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_span_id, 0u);
  EXPECT_EQ(root->outcome, "ok");

  std::vector<obs::Span> tree;
  for (const obs::Span& s : all) {
    if (s.trace_id == root->trace_id) tree.push_back(s);
  }
  // Root + >=2 attempts + >=3 hops (request, lost reply, retried pair) +
  // >=2 serves: a degenerate tree means a layer dropped the context.
  EXPECT_GE(tree.size(), 8u) << "trace is missing layers";

  // --- single connected tree ---------------------------------------------
  std::set<std::uint64_t> ids;
  for (const obs::Span& s : tree) {
    EXPECT_TRUE(ids.insert(s.span_id).second)
        << "duplicate span id " << s.span_id;
  }
  std::size_t roots = 0;
  for (const obs::Span& s : tree) {
    if (s.parent_span_id == 0) {
      ++roots;
      EXPECT_EQ(s.span_id, root->span_id);
    } else {
      EXPECT_TRUE(ids.count(s.parent_span_id))
          << "orphan span " << s.name << " (" << s.outcome << ")";
    }
  }
  EXPECT_EQ(roots, 1u);

  // --- sim-time ordering --------------------------------------------------
  for (const obs::Span& s : tree) {
    EXPECT_LE(s.start, s.end) << s.name;
    EXPECT_GE(s.start, root->start) << s.name << " starts before its root";
    EXPECT_LE(s.end, root->end) << s.name << " outlives its root";
    if (s.parent_span_id != 0) {
      for (const obs::Span& p : tree) {
        if (p.span_id != s.parent_span_id) continue;
        EXPECT_GE(s.start, p.start)
            << s.name << " starts before its parent " << p.name;
      }
    }
  }

  // --- the degraded path is all visible in one trace ----------------------
  bool saw_reroute = false, saw_retry = false, saw_lost_hop = false;
  bool saw_replay = false, saw_delivered_hop = false;
  for (const obs::Span& s : tree) {
    if (starts_with(s.name, "attempt:")) {
      if (s.outcome == "reroute") saw_reroute = true;
      if (s.outcome == "retry") saw_retry = true;
    }
    if (starts_with(s.name, "hop:")) {
      if (s.outcome == "lost") saw_lost_hop = true;
      if (s.outcome == "delivered") saw_delivered_hop = true;
    }
    if (s.name == "serve:ckpt.save" && s.outcome == "replay") saw_replay = true;
  }
  EXPECT_TRUE(saw_reroute) << "attempt 1 should reroute around the dead home";
  EXPECT_TRUE(saw_retry) << "lost reply should force a retry attempt";
  EXPECT_TRUE(saw_lost_hop) << "the dropped reply should appear as a lost hop";
  EXPECT_TRUE(saw_delivered_hop);
  EXPECT_TRUE(saw_replay) << "retry should be answered from the replay cache";

  // --- metrics side of the same story -------------------------------------
  // The peer partition's checkpoint daemon served both attempts, so its
  // serve-latency histogram (fed from the traced deliveries' wire times)
  // must have samples; the client latency histogram has this call.
  const obs::Histogram* serve_lat =
      h.cluster.metrics().find_histogram("svc.ckpt/0.serve_latency_us");
  ASSERT_NE(serve_lat, nullptr);
  EXPECT_GE(serve_lat->count(), 2u);
  const obs::Histogram* call_lat =
      h.cluster.metrics().find_histogram("api.call_latency_us");
  ASSERT_NE(call_lat, nullptr);
  EXPECT_GE(call_lat->count(), 1u);

  // --- failover is operator-visible ---------------------------------------
  // By now the partition-1 backup has taken over; the takeover is traced at
  // kError and rooted as its own span (no request caused it).
  bool takeover_traced = false;
  for (const auto& e : h.cluster.tracer().entries()) {
    if (e.level == sim::TraceLevel::kError &&
        e.message.find("takeover") != std::string::npos) {
      takeover_traced = true;
    }
  }
  EXPECT_TRUE(takeover_traced);
  bool takeover_span = false;
  for (const obs::Span& s : h.cluster.span_store().spans()) {
    if (s.name == "takeover" && s.parent_span_id == 0 &&
        s.trace_id != root->trace_id) {
      takeover_span = true;
    }
  }
  EXPECT_TRUE(takeover_span);
}

// With the plane off, the same degraded run must record nothing: the spans
// deque stays empty and no trace ids are minted into messages (the paper
// tables depend on the disabled path being bit-identical).
TEST(ObsE2eTest, DisabledPlaneRecordsNothingThroughSameFaults) {
  testing::KernelHarness h(testing::small_cluster_spec(),
                           testing::fast_ft_params());
  h.run_s(3.0);
  KernelApi api(h.cluster, h.cluster.compute_nodes(net::PartitionId{1})[0],
                h.kernel);
  h.injector.crash_node(h.cluster.server_node(net::PartitionId{1}));
  h.injector.drop_next_to(api.address(), 1);
  bool ok = false;
  api.checkpoint_save("e2e", "key", "data",
                      [&](KernelApi::Result<std::uint64_t> r) { ok = r.ok(); },
                      net::CallOptions{.deadline = 20 * sim::kSecond,
                                       .max_retries = 6});
  h.run_s(30.0);
  EXPECT_TRUE(ok);
  EXPECT_EQ(h.cluster.span_store().size(), 0u);
  EXPECT_EQ(h.cluster.span_store().recorded_total(), 0u);
  const obs::Histogram* call_lat =
      h.cluster.metrics().find_histogram("api.call_latency_us");
  ASSERT_NE(call_lat, nullptr);  // created eagerly by the KernelApi ctor
  EXPECT_EQ(call_lat->count(), 0u);
}

}  // namespace
}  // namespace phoenix
