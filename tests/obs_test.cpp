// Observability plane: metrics registry, span store, ambient trace context,
// and the fabric/admin integration points.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <set>

#include "admin/admin_console.h"
#include "gridview/gridview.h"
#include "kernel_fixture.h"
#include "net/fabric.h"
#include "obs/span_store.h"
#include "obs/trace_context.h"
#include "sim/parallel_engine.h"

namespace phoenix::obs {
namespace {

// --- metrics primitives ----------------------------------------------------

TEST(HistogramTest, CountSumMaxMean) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(90);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 120u);
  EXPECT_EQ(h.max(), 90u);
  EXPECT_DOUBLE_EQ(h.mean(), 40.0);
}

TEST(HistogramTest, PercentilesTrackLogBuckets) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0.0);  // empty
  // 100 identical values: every percentile lands in the value's bucket
  // [64, 128), clipped above by max+1.
  for (int i = 0; i < 100; ++i) h.record(100);
  EXPECT_GE(h.percentile(0.5), 64.0);
  EXPECT_LE(h.percentile(0.5), 101.0);
  EXPECT_GE(h.percentile(0.99), 64.0);
  EXPECT_LE(h.percentile(0.99), 101.0);
  // A two-mode distribution: p50 stays in the low mode, p99 in the high one.
  Histogram h2;
  for (int i = 0; i < 98; ++i) h2.record(100);
  for (int i = 0; i < 2; ++i) h2.record(1'000'000);
  EXPECT_LT(h2.percentile(0.5), 128.0);
  EXPECT_GT(h2.percentile(0.99), 500'000.0);
  EXPECT_EQ(h2.max(), 1'000'000u);
}

TEST(HistogramTest, ZeroAndHugeValues) {
  Histogram h;
  h.record(0);
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  EXPECT_LE(h.percentile(0.01), 1.0);  // the 0 lands in bucket 0
}

TEST(RegistryTest, FindOrCreateReturnsStablePointers) {
  Registry r;
  Counter* c = r.counter("a.count");
  c->inc(3);
  EXPECT_EQ(r.counter("a.count"), c);  // same object
  EXPECT_EQ(r.counter("a.count")->value(), 3u);
  EXPECT_EQ(r.find_counter("a.count"), c);
  EXPECT_EQ(r.find_counter("missing"), nullptr);
  EXPECT_EQ(r.find_gauge("missing"), nullptr);
  EXPECT_EQ(r.find_histogram("missing"), nullptr);
}

TEST(RegistryTest, SnapshotRunsProbesAndRendersJson) {
  Registry r;
  r.counter("events.total")->inc(7);
  r.histogram("lat.us")->record(100);
  const std::uint64_t id = r.register_probe(
      [](Registry& reg) { reg.gauge("pull.value")->set(42.5); });
  const std::string json = r.snapshot_json();
  EXPECT_NE(json.find("\"events.total\": 7"), std::string::npos);
  EXPECT_NE(json.find("pull.value"), std::string::npos);
  EXPECT_NE(json.find("42.5"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  r.unregister_probe(id);
  EXPECT_EQ(r.probe_count(), 0u);
}

TEST(RegistryTest, ResetValuesKeepsNamesAndProbes) {
  Registry r;
  Counter* c = r.counter("x");
  c->inc(5);
  r.histogram("h")->record(9);
  r.register_probe([](Registry&) {});
  r.reset_values();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(r.find_histogram("h")->count(), 0u);
  EXPECT_EQ(r.probe_count(), 1u);
}

// --- span store ------------------------------------------------------------

Span make_span(std::uint64_t trace, std::uint64_t id, std::uint64_t parent,
               sim::SimTime start, sim::SimTime end) {
  return Span{trace, id, parent, start, end, "test", "unit", "ok"};
}

TEST(SpanStoreTest, DisabledRecordsNothing) {
  SpanStore s;
  s.record(make_span(1, 2, 0, 0, 5));
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.recorded_total(), 0u);
}

TEST(SpanStoreTest, CapacityEvictsOldestFirst) {
  SpanStore s;
  s.set_enabled(true);
  s.set_capacity(3);
  for (std::uint64_t i = 1; i <= 5; ++i) s.record(make_span(1, i, 0, i, i + 1));
  ASSERT_EQ(s.size(), 3u);
  const auto spans = s.spans();
  EXPECT_EQ(spans.front().span_id, 3u);  // 1 and 2 evicted
  EXPECT_EQ(spans.back().span_id, 5u);
  EXPECT_EQ(s.recorded_total(), 5u);
}

TEST(SpanStoreTest, MintIdsAreUnique) {
  SpanStore s;
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) ids.insert(s.mint_id());
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(SpanStoreTest, ChromeJsonShape) {
  SpanStore s;
  s.set_enabled(true);
  s.record(Span{7, 8, 0, 10, 25, "fabric", "hop:test.msg", "delivered"});
  const std::string json = s.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":15"), std::string::npos);
  EXPECT_NE(json.find("hop:test.msg"), std::string::npos);
  EXPECT_NE(json.find("delivered"), std::string::npos);
}

// --- ambient context -------------------------------------------------------

TEST(ContextScopeTest, NestsAndRestores) {
  EXPECT_FALSE(current_context().active());
  {
    ContextScope outer(TraceContext{1, 10}, 100);
    EXPECT_EQ(current_context().trace_id, 1u);
    EXPECT_EQ(current_delivery_sent_at(), 100u);
    {
      ContextScope inner(TraceContext{2, 20});
      EXPECT_EQ(current_context().trace_id, 2u);
      EXPECT_EQ(current_context().parent_span_id, 20u);
      EXPECT_EQ(current_delivery_sent_at(), 0u);  // not a delivery frame
    }
    EXPECT_EQ(current_context().trace_id, 1u);
    EXPECT_EQ(current_delivery_sent_at(), 100u);
  }
  EXPECT_FALSE(current_context().active());
}

// --- fabric integration ----------------------------------------------------

struct ObsPingMsg final : net::Message {
  PHOENIX_MESSAGE_TYPE("obs.ping")
  std::size_t wire_size() const noexcept override { return 32; }
};

TEST(FabricObsTest, DeliveredCountAndStatsMerge) {
  sim::Engine eng(1);
  net::Fabric fabric(eng, 4, 2);
  std::size_t handled = 0;
  fabric.set_delivery_handler([&](const net::Envelope&) { ++handled; });
  const auto msg = std::make_shared<ObsPingMsg>();
  fabric.send({net::NodeId{0}, net::PortId{1}}, {net::NodeId{1}, net::PortId{1}},
              net::NetworkId{0}, msg);
  fabric.send({net::NodeId{2}, net::PortId{1}}, {net::NodeId{3}, net::PortId{1}},
              net::NetworkId{1}, msg);
  eng.run();
  EXPECT_EQ(handled, 2u);
  EXPECT_EQ(fabric.stats(net::NetworkId{0}).messages_delivered, 1u);
  EXPECT_EQ(fabric.stats(net::NetworkId{1}).messages_delivered, 1u);
  const net::NetworkStats total = fabric.total_stats();
  EXPECT_EQ(total.messages_sent, 2u);
  EXPECT_EQ(total.messages_delivered, 2u);

  net::NetworkStats a, b;
  a.messages_sent = 3;
  a.messages_delivered = 2;
  a.messages_lost = 1;
  b.messages_sent = 4;
  b.messages_delivered = 4;
  b.bytes_sent = 100;
  a.add(b);
  EXPECT_EQ(a.messages_sent, 7u);
  EXPECT_EQ(a.messages_delivered, 6u);
  EXPECT_EQ(a.messages_lost, 1u);
  EXPECT_EQ(a.bytes_sent, 100u);
}

TEST(FabricObsTest, TracedSendRecordsHopAndPropagatesContext) {
  sim::Engine eng(1);
  net::Fabric fabric(eng, 2, 1);
  SpanStore spans;
  spans.set_enabled(true);
  fabric.set_span_store(&spans);

  TraceContext seen;
  sim::SimTime seen_sent_at = 0;
  fabric.set_delivery_handler([&](const net::Envelope&) {
    seen = current_context();
    seen_sent_at = current_delivery_sent_at();
  });

  const std::uint64_t trace = spans.mint_id();
  const std::uint64_t parent = spans.mint_id();
  {
    ContextScope scope(TraceContext{trace, parent});
    fabric.send({net::NodeId{0}, net::PortId{1}},
                {net::NodeId{1}, net::PortId{1}}, net::NetworkId{0},
                std::make_shared<ObsPingMsg>());
  }
  eng.run();

  ASSERT_EQ(spans.size(), 1u);
  const Span hop = spans.spans().front();
  EXPECT_EQ(hop.trace_id, trace);
  EXPECT_EQ(hop.parent_span_id, parent);
  EXPECT_EQ(hop.name, "hop:obs.ping");
  EXPECT_EQ(hop.outcome, "delivered");
  EXPECT_GT(hop.end, hop.start);
  // The delivery handler ran under the hop's context, with the wire time.
  EXPECT_EQ(seen.trace_id, trace);
  EXPECT_EQ(seen.parent_span_id, hop.span_id);
  EXPECT_EQ(seen_sent_at, hop.start);
}

TEST(FabricObsTest, DisabledStoreLeavesUntracedPathAlone) {
  sim::Engine eng(1);
  net::Fabric fabric(eng, 2, 1);
  SpanStore spans;  // never enabled
  fabric.set_span_store(&spans);
  std::size_t handled = 0;
  fabric.set_delivery_handler([&](const net::Envelope&) { ++handled; });
  fabric.send({net::NodeId{0}, net::PortId{1}}, {net::NodeId{1}, net::PortId{1}},
              net::NetworkId{0}, std::make_shared<ObsPingMsg>());
  eng.run();
  EXPECT_EQ(handled, 1u);
  EXPECT_EQ(spans.size(), 0u);
}

TEST(ShardedFabricObsTest, CrossShardSpanAndMergedStats) {
  // Two shards, one node each, sequential mode (threads=0) so everything is
  // deterministic and runs on this thread.
  sim::ParallelEngine pe({.shards = 2,
                          .threads = 0,
                          .lookahead = net::LatencyModel{}.min_latency(),
                          .seed = 99});
  net::ShardedFabric fabric(pe, {0, 1}, 1);
  SpanStore spans;
  spans.set_enabled(true);
  fabric.set_span_store(&spans);

  TraceContext seen;
  fabric.set_delivery_handler(
      [&](const net::Envelope&) { seen = current_context(); });

  const std::uint64_t trace = spans.mint_id();
  const std::uint64_t parent = spans.mint_id();
  pe.shard(0).schedule_at(10, [&] {
    ContextScope scope(TraceContext{trace, parent});
    fabric.send({net::NodeId{0}, net::PortId{1}},
                {net::NodeId{1}, net::PortId{1}}, net::NetworkId{0},
                std::make_shared<ObsPingMsg>());
  });
  pe.run_until(10 * sim::kMillisecond);

  ASSERT_EQ(spans.size(), 1u);
  const Span hop = spans.spans().front();
  EXPECT_EQ(hop.outcome, "delivered_cross_shard");
  EXPECT_EQ(hop.trace_id, trace);
  EXPECT_EQ(hop.parent_span_id, parent);
  EXPECT_EQ(seen.trace_id, trace);
  EXPECT_EQ(seen.parent_span_id, hop.span_id);

  const net::NetworkStats total = fabric.total_stats();
  EXPECT_EQ(total.messages_sent, 1u);
  EXPECT_EQ(total.messages_delivered, 1u);
  EXPECT_EQ(fabric.cross_shard_sent(), 1u);

  // register_metrics publishes the merged stats as gauges at snapshot time.
  Registry reg;
  reg.set_enabled(true);
  fabric.register_metrics(reg, "sf");
  reg.snapshot_json();
  EXPECT_DOUBLE_EQ(reg.find_gauge("sf.messages_delivered")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("sf.cross_shard_sent")->value(), 1.0);
}

// --- cluster / admin integration -------------------------------------------

TEST(ClusterObsTest, RegistryDisabledByDefaultAndProbesPreRegistered) {
  phoenix::testing::KernelHarness h(phoenix::testing::small_cluster_spec());
  EXPECT_FALSE(h.cluster.metrics().enabled());
  EXPECT_FALSE(h.cluster.span_store().enabled());
  // Fabric/engine probes are registered at construction; enabling at any
  // point is all a diagnostic run needs.
  EXPECT_GT(h.cluster.metrics().probe_count(), 0u);
  h.cluster.metrics().set_enabled(true);
  h.run_s(2.0);
  const std::string json = h.cluster.metrics().snapshot_json();
  EXPECT_NE(json.find("fabric.messages_sent"), std::string::npos);
  EXPECT_NE(json.find("engine.events_executed"), std::string::npos);
}

TEST(ClusterObsTest, MetricsStayZeroCostWhenDisabled) {
  phoenix::testing::KernelHarness h(phoenix::testing::small_cluster_spec(),
                                    phoenix::testing::fast_ft_params());
  h.run_s(5.0);
  // Detectors sampled (member counters advance) but the registry-owned
  // counters were never bumped: the plane is off.
  const Counter* samples = h.cluster.metrics().find_counter("detector.samples");
  ASSERT_NE(samples, nullptr);  // created at construction, written never
  EXPECT_EQ(samples->value(), 0u);
  EXPECT_EQ(h.cluster.span_store().size(), 0u);
}

TEST(ClusterObsTest, DetectorCountersAdvanceWhenEnabled) {
  phoenix::testing::KernelHarness h(phoenix::testing::small_cluster_spec(),
                                    phoenix::testing::fast_ft_params());
  h.cluster.metrics().set_enabled(true);
  h.run_s(5.0);
  EXPECT_GT(h.cluster.metrics().find_counter("detector.samples")->value(), 0u);
  EXPECT_GT(h.cluster.metrics().find_counter("detector.full_reports")->value(),
            0u);
}

TEST(AdminObsTest, MetricsReportReturnsRegistrySnapshot) {
  phoenix::testing::KernelHarness h(phoenix::testing::small_cluster_spec(),
                                    phoenix::testing::fast_ft_params());
  h.cluster.metrics().set_enabled(true);
  h.run_s(3.0);
  admin::AdminConsole console(
      h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0], h.kernel);
  const std::string report = console.metrics_report();
  EXPECT_NE(report.find("\"counters\""), std::string::npos);
  EXPECT_NE(report.find("\"gauges\""), std::string::npos);
  EXPECT_NE(report.find("fabric.messages_sent"), std::string::npos);
  // The fabric has genuinely carried kernel traffic by now.
  const Gauge* sent = h.cluster.metrics().find_gauge("fabric.messages_sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_GT(sent->value(), 0.0);
}

TEST(GridViewObsTest, RefreshLatencyHistogramRecords) {
  phoenix::testing::KernelHarness h(phoenix::testing::small_cluster_spec(),
                                    phoenix::testing::fast_ft_params());
  h.cluster.metrics().set_enabled(true);
  h.run_s(2.0);
  gridview::GridView view(h.cluster,
                          h.cluster.compute_nodes(net::PartitionId{0})[1],
                          h.kernel, 1 * sim::kSecond);
  view.start();
  h.run_s(5.0);
  const Histogram* lat =
      h.cluster.metrics().find_histogram("gridview.refresh_latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_GT(lat->count(), 0u);
  EXPECT_GT(lat->percentile(0.5), 0.0);
}

}  // namespace
}  // namespace phoenix::obs
