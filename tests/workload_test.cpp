// Workload-layer tests: HPL model properties, job-trace generation.
#include "workload/hpl_model.h"

#include <gtest/gtest.h>

#include "workload/job_trace.h"

namespace phoenix::workload {
namespace {

TEST(HplModelTest, MoreCpusMoreGflops) {
  HplConfig small, big;
  small.cpus = 4;
  big.cpus = 128;
  EXPECT_GT(run_hpl_model(big).gflops, run_hpl_model(small).gflops);
}

TEST(HplModelTest, EfficiencyDecaysWithScale) {
  HplConfig a, b;
  a.cpus = 4;
  b.cpus = 128;
  EXPECT_GT(run_hpl_model(a).efficiency, run_hpl_model(b).efficiency);
  EXPECT_GT(run_hpl_model(b).efficiency, 0.5);  // still a sane machine
}

TEST(HplModelTest, BackgroundDaemonsCostExactlyTheirShare) {
  HplConfig clean, loaded;
  clean.cpus = loaded.cpus = 64;
  loaded.background_cpu_fraction = 0.01;
  const double ratio = run_hpl_model(loaded).gflops / run_hpl_model(clean).gflops;
  EXPECT_NEAR(ratio, 0.99, 1e-9);
}

TEST(HplModelTest, ZeroBackgroundIsIdentity) {
  HplConfig config;
  config.cpus = 16;
  const auto base = run_hpl_model(config);
  config.background_cpu_fraction = 0.0;
  EXPECT_DOUBLE_EQ(run_hpl_model(config).gflops, base.gflops);
}

TEST(HplModelTest, TimePositiveAndScalesWithProblemSize) {
  HplConfig small, big;
  small.cpus = big.cpus = 16;
  small.problem_size_n = 10000;
  big.problem_size_n = 40000;
  const auto ts = run_hpl_model(small);
  const auto tb = run_hpl_model(big);
  EXPECT_GT(ts.time_seconds, 0.0);
  // 4x n => 64x flops at the same rate.
  EXPECT_NEAR(tb.time_seconds / ts.time_seconds, 64.0, 2.0);
}

TEST(HplModelTest, DefaultProblemSizeWeakScales) {
  EXPECT_DOUBLE_EQ(default_problem_size(4), 20000.0);
  EXPECT_NEAR(default_problem_size(16), 40000.0, 1.0);
  EXPECT_GT(default_problem_size(128), default_problem_size(64));
}

TEST(HplModelTest, FullBackgroundYieldsZero) {
  HplConfig config;
  config.background_cpu_fraction = 1.0;
  EXPECT_DOUBLE_EQ(run_hpl_model(config).gflops, 0.0);
}

TEST(JobTraceTest, DeterministicPerSeed) {
  TraceParams params;
  params.job_count = 50;
  const auto a = generate_trace(params);
  const auto b = generate_trace(params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].duration, b[i].duration);
    EXPECT_EQ(a[i].nodes, b[i].nodes);
    EXPECT_EQ(a[i].user, b[i].user);
  }
  params.seed = 99;
  const auto c = generate_trace(params);
  EXPECT_NE(a[0].arrival, c[0].arrival);
}

TEST(JobTraceTest, ArrivalsMonotonic) {
  TraceParams params;
  params.job_count = 200;
  const auto trace = generate_trace(params);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
  }
}

TEST(JobTraceTest, RespectsBounds) {
  TraceParams params;
  params.job_count = 500;
  params.max_nodes = 4;
  params.min_duration_s = 10.0;
  const auto trace = generate_trace(params);
  EXPECT_EQ(trace.size(), 500u);
  for (const auto& job : trace) {
    EXPECT_GE(job.nodes, 1u);
    EXPECT_LE(job.nodes, 4u);
    EXPECT_GE(job.duration, sim::from_seconds(10.0));
    EXPECT_FALSE(job.user.empty());
    EXPECT_EQ(job.pool, "batch");
  }
}

TEST(JobTraceTest, MeanInterarrivalRoughlyCorrect) {
  TraceParams params;
  params.job_count = 2000;
  params.mean_interarrival_s = 30.0;
  const auto trace = generate_trace(params);
  const double total_s = sim::to_seconds(trace.back().arrival);
  EXPECT_NEAR(total_s / 2000.0, 30.0, 3.0);
}

TEST(JobTraceTest, MixOfJobSizes) {
  TraceParams params;
  params.job_count = 1000;
  params.max_nodes = 8;
  const auto trace = generate_trace(params);
  std::size_t small = 0, large = 0;
  for (const auto& job : trace) {
    if (job.nodes == 1) ++small;
    if (job.nodes >= 4) ++large;
  }
  EXPECT_GT(small, 300u);  // many small jobs
  EXPECT_GT(large, 50u);   // some big ones
}

}  // namespace
}  // namespace phoenix::workload
