// Unit tests for the conservative parallel-DES engine: per-shard RNG stream
// derivation, lookahead/window protocol edges (zero lookahead, same-window
// cross-shard delivery, mailbox draining at barriers), cross-shard
// cancellation from the owning thread, idle fast-forward, and determinism
// across thread counts for a fixed shard count.
#include "sim/parallel_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/rng.h"

namespace phoenix::sim {
namespace {

// ---------------------------------------------------------------------------
// Per-shard RNG stream derivation.
// ---------------------------------------------------------------------------

TEST(StreamSeedTest, DerivationIsPure) {
  EXPECT_EQ(derive_stream_seed(42, 3), derive_stream_seed(42, 3));
  EXPECT_EQ(derive_stream_seed(0, 0), derive_stream_seed(0, 0));
}

TEST(StreamSeedTest, AdjacentStreamsDiverge) {
  // Child seeds differ, and the streams they seed do not overlap in their
  // first draws (the practical "independence" the shards need).
  const std::uint64_t root = 0x1234;
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = a + 1; b < 8; ++b) {
      ASSERT_NE(derive_stream_seed(root, a), derive_stream_seed(root, b));
      Rng ra(derive_stream_seed(root, a));
      Rng rb(derive_stream_seed(root, b));
      bool all_equal = true;
      for (int i = 0; i < 16; ++i) {
        if (ra.next() != rb.next()) all_equal = false;
      }
      ASSERT_FALSE(all_equal) << "streams " << a << " and " << b << " collide";
    }
  }
}

TEST(StreamSeedTest, DifferentRootsGiveDifferentStreams) {
  EXPECT_NE(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
}

TEST(ParallelEngineTest, ShardRngsMatchDerivedStreams) {
  ParallelEngine pe({.shards = 3, .threads = 0, .lookahead = 100, .seed = 777});
  for (std::size_t s = 0; s < 3; ++s) {
    Rng reference(derive_stream_seed(777, s));
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(pe.shard(s).rng().next(), reference.next()) << "shard " << s;
    }
  }
}

// ---------------------------------------------------------------------------
// Construction and lookahead validation.
// ---------------------------------------------------------------------------

TEST(ParallelEngineTest, ZeroLookaheadIsRejected) {
  EXPECT_THROW(
      ParallelEngine({.shards = 2, .threads = 0, .lookahead = 0, .seed = 1}),
      std::invalid_argument);
}

TEST(ParallelEngineTest, ZeroShardsAreRejected) {
  EXPECT_THROW(
      ParallelEngine({.shards = 0, .threads = 0, .lookahead = 10, .seed = 1}),
      std::invalid_argument);
}

TEST(ParallelEngineTest, QuiescentCrossPostIsRejected) {
  ParallelEngine pe({.shards = 2, .threads = 0, .lookahead = 100, .seed = 1});
  EXPECT_THROW(pe.post_cross(0, 1, 500, [] {}), std::logic_error);
}

class SameWindowDelivery : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SameWindowDelivery, IsRejectedWithClearError) {
  // An event at t=10 posting a cross-shard delivery at t=50 — inside its own
  // window [0, 99] — violates the conservative contract and must fail the
  // run loudly, in sequential and threaded mode alike.
  ParallelEngine pe(
      {.shards = 2, .threads = GetParam(), .lookahead = 100, .seed = 1});
  pe.shard(0).schedule_at(10, [&pe] { pe.post_cross(0, 1, 50, [] {}); });
  EXPECT_THROW(pe.run_until(1'000), std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(Modes, SameWindowDelivery, ::testing::Values(0, 2));

// ---------------------------------------------------------------------------
// Mailbox draining at window barriers.
// ---------------------------------------------------------------------------

TEST(ParallelEngineTest, MailboxDrainsAtWindowBarrier) {
  ParallelEngine pe({.shards = 2, .threads = 0, .lookahead = 100, .seed = 1});
  std::vector<std::pair<SimTime, char>> shard1_log;

  // Quiescent setup: a local shard-1 event at t=110, and a shard-0 event at
  // t=10 posting cross deliveries at t=110 (next window) and t=350 (three
  // windows out).
  pe.shard(1).schedule_at(110, [&] { shard1_log.push_back({pe.shard(1).now(), 'L'}); });
  pe.shard(0).schedule_at(10, [&] {
    pe.post_cross(0, 1, 110, [&] { shard1_log.push_back({pe.shard(1).now(), 'C'}); });
    pe.post_cross(0, 1, 350, [&] { shard1_log.push_back({pe.shard(1).now(), 'F'}); });
  });

  pe.run_until(1'000);
  // The setup-scheduled local event holds the earlier insertion sequence, so
  // it wins the t=110 tie; the far entry waits in the engine until t=350.
  ASSERT_EQ(shard1_log.size(), 3u);
  EXPECT_EQ(shard1_log[0], (std::pair<SimTime, char>{110, 'L'}));
  EXPECT_EQ(shard1_log[1], (std::pair<SimTime, char>{110, 'C'}));
  EXPECT_EQ(shard1_log[2], (std::pair<SimTime, char>{350, 'F'}));
  EXPECT_EQ(pe.cross_posted(), 2u);
  EXPECT_EQ(pe.cross_delivered(), 2u);
  EXPECT_EQ(pe.now(), 1'000u);
}

TEST(ParallelEngineTest, SameShardPostDegeneratesToLocalSchedule) {
  ParallelEngine pe({.shards = 2, .threads = 0, .lookahead = 100, .seed = 1});
  SimTime fired_at = 0;
  // Even a same-window target is fine: no mailbox is involved.
  pe.shard(0).schedule_at(10, [&] {
    pe.post_cross(0, 0, 20, [&] { fired_at = pe.shard(0).now(); });
  });
  pe.run_until(500);
  EXPECT_EQ(fired_at, 20u);
  EXPECT_EQ(pe.cross_posted(), 0u);  // never crossed a shard boundary
}

TEST(ParallelEngineTest, CrossShardEventCancelledFromOwningThread) {
  ParallelEngine pe({.shards = 2, .threads = 0, .lookahead = 100, .seed = 1});
  EventId victim{};  // written at drain time, owned by shard 1
  bool victim_fired = false;
  bool cancel_ok = false;
  pe.shard(0).schedule_at(5, [&] {
    pe.post_cross(0, 1, 250, [&] { victim_fired = true; }, &victim);
    // A second, earlier cross event cancels the first — running on shard 1,
    // the thread that owns the drained event.
    pe.post_cross(0, 1, 150, [&] {
      ASSERT_NE(victim.value, 0u);  // drained before any window-1 event ran
      cancel_ok = pe.shard(1).cancel(victim);
    });
  });
  pe.run_until(1'000);
  EXPECT_TRUE(cancel_ok);
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(pe.cross_delivered(), 2u);  // both drained; one was then cancelled
}

// ---------------------------------------------------------------------------
// Idle fast-forward and resumption.
// ---------------------------------------------------------------------------

TEST(ParallelEngineTest, FastForwardsOverIdleGaps) {
  ParallelEngine pe({.shards = 2, .threads = 0, .lookahead = 100, .seed = 1});
  int fired = 0;
  pe.shard(0).schedule_at(5, [&] { ++fired; });
  pe.shard(1).schedule_at(10 * kSecond, [&] { ++fired; });
  EXPECT_EQ(pe.run_until(10 * kSecond), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(pe.now(), 10 * kSecond);
  // 10s at a 100us lookahead would be 100k windows without the jump.
  EXPECT_LE(pe.windows_run(), 4u);
}

TEST(ParallelEngineTest, ResumesAcrossRunUntilCalls) {
  ParallelEngine pe({.shards = 2, .threads = 0, .lookahead = 50, .seed = 1});
  std::vector<SimTime> fires;
  pe.shard(0).schedule_at(40, [&] { fires.push_back(pe.shard(0).now()); });
  pe.run_until(100);
  // Quiescent re-arm, including at exactly the resumption instant.
  pe.shard(0).schedule_at(100, [&] { fires.push_back(pe.shard(0).now()); });
  pe.shard(1).schedule_at(130, [&] { fires.push_back(pe.shard(1).now()); });
  pe.run_until(200);
  EXPECT_EQ(fires, (std::vector<SimTime>{40, 100, 130}));
  EXPECT_EQ(pe.executed(), 3u);
}

// ---------------------------------------------------------------------------
// Determinism: fixed shard count, any thread count.
// ---------------------------------------------------------------------------

// A cross-shard ping-pong storm: every bounce records (time, tag) on the
// shard it lands on, draws its next hop and delay from the *owning* shard's
// RNG stream, and re-posts. Any cross-thread nondeterminism (drain order,
// tie-breaks, RNG sharing) would change the traces.
struct BounceWorld {
  explicit BounceWorld(std::size_t threads)
      : pe({.shards = 4, .threads = threads, .lookahead = 50, .seed = 2026}),
        trace(4) {}

  void bounce(std::size_t s, std::uint64_t tag, int hops) {
    trace[s].push_back({pe.shard(s).now(), tag});
    if (hops <= 0) return;
    Engine& eng = pe.shard(s);
    const std::size_t next = (s + 1 + eng.rng().next() % 3) % 4;
    const SimTime at = eng.now() + 50 + eng.rng().next() % 75;
    pe.post_cross(s, next, at, [this, next, tag, hops] {
      bounce(next, tag * 1'000'003 + 7, hops - 1);
    });
    // Mix in a local (same-shard) event too, so mailbox arrivals interleave
    // with shard-local scheduling.
    if (eng.rng().chance(0.5)) {
      eng.schedule_after(1 + eng.rng().next() % 30,
                         [this, s, tag] { trace[s].push_back({pe.shard(s).now(), ~tag}); });
    }
  }

  std::vector<std::vector<std::pair<SimTime, std::uint64_t>>> run() {
    for (std::size_t s = 0; s < 4; ++s) {
      for (int r = 0; r < 3; ++r) {
        pe.shard(s).schedule_at(1 + 17 * r + s,
                                [this, s, r] { bounce(s, s * 10 + r, 40); });
      }
    }
    pe.run_until(100 * kMillisecond);
    return std::move(trace);
  }

  ParallelEngine pe;
  std::vector<std::vector<std::pair<SimTime, std::uint64_t>>> trace;
};

TEST(ParallelEngineTest, TraceIdenticalForAnyThreadCount) {
  const auto reference = BounceWorld(0).run();  // sequential reference mode
  std::size_t total = 0;
  for (const auto& t : reference) total += t.size();
  ASSERT_GT(total, 300u) << "workload too small to be meaningful";

  for (const std::size_t threads : {1u, 2u, 4u}) {
    const auto got = BounceWorld(threads).run();
    ASSERT_EQ(got, reference) << "divergence at threads=" << threads;
  }
}

}  // namespace
}  // namespace phoenix::sim
