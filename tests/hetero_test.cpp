// Heterogeneous-hardware tests: per-node architectures (the paper's lowest
// "heterogeneous resource" layer), configuration introspection of them, and
// architecture-constrained PWS scheduling.
#include <gtest/gtest.h>

#include "kernel_fixture.h"
#include "pws/pws.h"

namespace phoenix {
namespace {

using phoenix::testing::KernelHarness;
using phoenix::testing::fast_ft_params;

cluster::ClusterSpec hetero_spec() {
  cluster::ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 4;
  spec.backups_per_partition = 1;
  spec.compute_archs = {"x86_64", "ia64"};  // alternating compute nodes
  return spec;
}

TEST(HeteroClusterTest, ArchesAssignedRoundRobin) {
  cluster::Cluster cluster(hetero_spec());
  const auto computes = cluster.compute_nodes(net::PartitionId{0});
  EXPECT_EQ(cluster.node(computes[0]).arch(), "x86_64");
  EXPECT_EQ(cluster.node(computes[1]).arch(), "ia64");
  EXPECT_EQ(cluster.node(computes[2]).arch(), "x86_64");
  // Servers and backups keep the default architecture.
  EXPECT_EQ(cluster.node(cluster.server_node(net::PartitionId{0})).arch(), "x86_64");
  EXPECT_EQ(cluster.node(cluster.backup_nodes(net::PartitionId{0})[0]).arch(),
            "x86_64");
  EXPECT_DOUBLE_EQ(cluster.node(computes[0]).cpu_speed_ghz(), 2.2);
}

TEST(HeteroClusterTest, HomogeneousByDefault) {
  cluster::ClusterSpec spec = phoenix::testing::small_cluster_spec();
  cluster::Cluster cluster(spec);
  for (const auto& node : cluster.nodes()) {
    EXPECT_EQ(node.arch(), "x86_64");
  }
}

TEST(HeteroClusterTest, IntrospectionExportsArch) {
  cluster::Cluster cluster(hetero_spec());
  kernel::PhoenixKernel kernel(cluster, fast_ft_params());
  kernel.boot();
  const auto computes = cluster.compute_nodes(net::PartitionId{0});
  EXPECT_EQ(*kernel.config().get("hardware/node/" +
                                 std::to_string(computes[1].value) + "/arch"),
            "ia64");
}

class HeteroPwsTest : public ::testing::Test {
 protected:
  HeteroPwsTest() : h(hetero_spec(), fast_ft_params()) {
    pws::PwsConfig config;
    pws::PoolConfig pool;
    pool.name = "batch";
    for (std::uint32_t p = 0; p < 2; ++p) {
      for (net::NodeId n : h.cluster.compute_nodes(net::PartitionId{p})) {
        pool.nodes.push_back(n);
      }
    }
    config.pools = {pool};
    pws = std::make_unique<pws::PwsSystem>(h.kernel, config);
    h.run_s(1.0);
  }

  pws::JobId submit(unsigned nodes, double seconds, const std::string& arch) {
    pws::SubmitRequest r;
    r.user = "u";
    r.pool = "batch";
    r.nodes = nodes;
    r.duration = sim::from_seconds(seconds);
    r.arch = arch;
    return pws->submit(r);
  }

  KernelHarness h;
  std::unique_ptr<pws::PwsSystem> pws;
};

TEST_F(HeteroPwsTest, ArchConstraintHonored) {
  const auto id = submit(3, 60.0, "ia64");
  h.run_s(3.0);
  const pws::Job* job = pws->scheduler().job(id);
  ASSERT_EQ(job->state, pws::JobState::kRunning);
  ASSERT_EQ(job->allocated.size(), 3u);
  for (net::NodeId n : job->allocated) {
    EXPECT_EQ(h.cluster.node(n).arch(), "ia64");
  }
}

TEST_F(HeteroPwsTest, UnconstrainedJobUsesAnyArch) {
  const auto id = submit(8, 60.0, "");
  h.run_s(3.0);
  EXPECT_EQ(pws->scheduler().job(id)->state, pws::JobState::kRunning);
}

TEST_F(HeteroPwsTest, OversizedArchRequestWaits) {
  // Only 4 ia64 nodes exist (2 per partition); asking for 5 can never run.
  const auto id = submit(5, 60.0, "ia64");
  h.run_s(5.0);
  EXPECT_EQ(pws->scheduler().job(id)->state, pws::JobState::kQueued);
  // Meanwhile a satisfiable job behind it is not starved forever: FIFO
  // blocks the head, so cancel the impossible one and the next runs.
  const auto runnable = submit(2, 30.0, "x86_64");
  pws->scheduler().cancel(id);
  h.run_s(3.0);
  EXPECT_EQ(pws->scheduler().job(runnable)->state, pws::JobState::kRunning);
}

TEST_F(HeteroPwsTest, ArchSurvivesCheckpointRestart) {
  submit(8, 120.0, "");           // occupy everything
  const auto queued = submit(2, 60.0, "ia64");
  h.run_s(3.0);
  h.injector.kill_daemon(pws->scheduler());
  h.run_s(12.0);
  ASSERT_TRUE(pws->scheduler().alive());
  const pws::Job* job = pws->scheduler().job(queued);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->arch, "ia64");
}

}  // namespace
}  // namespace phoenix
